#ifndef APMBENCH_LSM_MEMTABLE_H_
#define APMBENCH_LSM_MEMTABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/skiplist.h"
#include "common/slice.h"
#include "lsm/iterator.h"

namespace apmbench::lsm {

/// In-memory write buffer, as in Cassandra's memtable / HBase's memstore:
/// hash-partitioned into `num_shards` shards, each an insert-only skip
/// list backed by its own Arena. Entries are keyed by (user key, sequence
/// number descending), so every Put/Delete inserts a fresh node and
/// nothing is ever overwritten in place — the LevelDB memtable layout.
///
/// Sharding exists for write concurrency: each skip list admits a single
/// writer concurrent with lock-free readers, so with N shards up to N
/// threads can insert at once as long as each shard has at most one
/// writer at a time (the write path's shard-claim protocol guarantees
/// that; see docs/concurrency.md). With num_shards == 1 the structure is
/// exactly the pre-shard single-skiplist memtable: Get, Put, and
/// NewIterator take the same single-list code paths with no routing or
/// merge overhead.
///
/// Entries and skip-list nodes are bump-allocated from the shard's Arena:
/// a Put performs zero heap allocations of its own, and
/// ApproximateMemoryUsage() is the exact number of bytes reserved across
/// all shard arenas, which is what the flush trigger compares against
/// Options::memtable_bytes. Each entry is encoded contiguously in arena
/// memory as
///
///   varint32 klen | key | fixed64 seq | flags u8 | varint32 vlen | value
///
/// with flags bit0 = tombstone; the skip-list key is the pointer to the
/// first byte and the comparator decodes in place.
///
/// Deletions are tombstone entries so they shadow older SSTable data
/// after a flush. Readers pass a `seq_limit` to see a consistent prefix
/// of the write history (the DB uses its last fully applied sequence
/// number, which keeps half-applied write groups invisible).
class MemTable {
 public:
  static constexpr uint64_t kMaxSeq = UINT64_MAX;
  /// Shard-claim bitmaps are one 64-bit word, and far fewer shards than
  /// this already exhaust the parallelism of a write group.
  static constexpr int kMaxShards = 64;

  explicit MemTable(size_t arena_block_bytes = Arena::kDefaultBlockBytes,
                    int num_shards = 1);

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Shard a user key routes to: the top bits of a splitmix64-style mix
  /// over the key bytes (the same finalizer as common/cache.h's
  /// CacheKeyHash) masked down to the shard count, which must be a power
  /// of two. Stable across processes — but never persisted, so changing
  /// the shard count between runs is safe.
  static uint32_t ShardOf(const Slice& key, int num_shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }

  void Put(const Slice& key, const Slice& value, uint64_t seq);
  void Delete(const Slice& key, uint64_t seq);

  /// Direct-to-shard variants for the parallel group apply: the caller
  /// has already routed `key` (ShardOf) and owns exclusive write access
  /// to `shard` for the duration of the group.
  void PutToShard(int shard, const Slice& key, const Slice& value,
                  uint64_t seq);
  void DeleteToShard(int shard, const Slice& key, uint64_t seq);

  enum class GetResult { kFound, kDeleted, kAbsent };
  /// Looks up the newest version of `key` with sequence <= `seq_limit`;
  /// on kFound, `*value` receives the stored value. `*seq` (optional)
  /// receives the entry's write sequence number on any hit. Only the
  /// key's own shard is searched.
  GetResult Get(const Slice& key, std::string* value, uint64_t* seq = nullptr,
                uint64_t seq_limit = kMaxSeq) const;

  /// Exact bytes reserved across the shard arenas (entry bytes plus
  /// skip-list nodes), compared against Options::memtable_bytes by the
  /// flush trigger. Safe to read from any thread.
  size_t ApproximateMemoryUsage() const;

  /// Number of stored entries across all shards. With multi-versioning
  /// this counts every version, not distinct user keys.
  size_t EntryCount() const;

  /// Iterator over entries with sequence <= `seq_limit`, in (key asc, seq
  /// desc) order — a key with several versions appears newest-first, which
  /// is exactly what DedupIterator expects. With one shard this is the
  /// plain skip-list cursor; with several it k-way-merges the shard runs,
  /// so flush, scan, and snapshot consumers see one sorted stream and the
  /// on-disk contracts are untouched. Safe to use concurrently with the
  /// (per-shard single) writers; the MemTable must outlive it.
  std::unique_ptr<Iterator> NewIterator(uint64_t seq_limit = kMaxSeq) const;

 private:
  /// Fields of an arena-encoded entry, decoded in place (slices point at
  /// arena bytes and stay valid for the memtable's lifetime).
  struct DecodedEntry {
    Slice key;
    Slice value;
    uint64_t seq = 0;
    bool tombstone = false;
  };
  static DecodedEntry DecodeEntry(const char* p);

  /// Compares encoded entries by (key asc, seq desc). A lookup key built
  /// by LookupKey encodes only the `klen | key | seq` prefix, which is all
  /// the comparator reads.
  struct EntryCompare {
    int operator()(const char* a, const char* b) const;
  };

  using Table = SkipList<const char*, char, EntryCompare>;

  /// One hash partition: an arena and the skip list allocating from it.
  struct Shard {
    explicit Shard(size_t arena_block_bytes)
        : arena(arena_block_bytes), table(&arena) {}
    Arena arena;
    Table table;
  };

  void Add(int shard, const Slice& key, const Slice& value, uint64_t seq,
           bool tombstone);
  int RouteShard(const Slice& key) const {
    return shards_.size() == 1
               ? 0
               : static_cast<int>(ShardOf(key, num_shards()));
  }

  friend class MemTableIterator;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace apmbench::lsm

#endif  // APMBENCH_LSM_MEMTABLE_H_
