#include "lsm/version.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/slice.h"

namespace apmbench::lsm {

namespace {
// Manifest format v1 predates per-file table-format tracking; v2 adds a
// fixed32 format_version to every file record. Recovery accepts both so
// a database written before the storage-format refactor still opens (its
// files report format_version 0 = unknown until rewritten).
constexpr uint64_t kManifestMagicV1 = 0x41504d4d414e4631ull;  // "APMMANF1"
constexpr uint64_t kManifestMagicV2 = 0x41504d4d414e4632ull;  // "APMMANF2"
}  // namespace

VersionSet::VersionSet(const Options& options, Env* env)
    : options_(options), env_(env), levels_(Options::kNumLevels) {}

std::string VersionSet::ManifestPath() const {
  return options_.dir + "/MANIFEST";
}

uint64_t VersionSet::LevelBytes(int level) const {
  uint64_t total = 0;
  for (const auto& f : levels_[level]) total += f.file_size;
  return total;
}

uint64_t VersionSet::TotalFiles() const {
  uint64_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

Status VersionSet::Persist() {
  std::string body;
  PutFixed64(&body, kManifestMagicV2);
  PutFixed64(&body, next_file_number_.load());
  PutFixed64(&body, last_seq_);
  PutFixed64(&body, log_number_);
  uint32_t count = 0;
  for (const auto& level : levels_) count += level.size();
  PutFixed32(&body, count);
  for (int level = 0; level < Options::kNumLevels; level++) {
    for (const auto& f : levels_[level]) {
      PutFixed32(&body, static_cast<uint32_t>(level));
      PutFixed64(&body, f.number);
      PutFixed64(&body, f.file_size);
      PutFixed64(&body, f.num_entries);
      PutFixed32(&body, f.format_version);
      PutLengthPrefixedSlice(&body, Slice(f.smallest));
      PutLengthPrefixedSlice(&body, Slice(f.largest));
    }
  }
  PutFixed32(&body, MaskCrc(Crc32c(body.data(), body.size())));

  std::string tmp = ManifestPath() + ".tmp";
  APM_RETURN_IF_ERROR(env_->WriteStringToFile(tmp, Slice(body)));
  APM_RETURN_IF_ERROR(env_->RenameFile(tmp, ManifestPath()));
  // The rename is atomic but only durable once the directory entry is
  // fsynced; without this a power loss can roll the manifest back to the
  // previous state (which recovery tolerates) — or leave nothing at all
  // on filesystems that journal lazily.
  return env_->SyncDir(options_.dir);
}

Status VersionSet::Recover(bool* found) {
  *found = false;
  if (!env_->FileExists(ManifestPath())) return Status::OK();

  std::string body;
  APM_RETURN_IF_ERROR(env_->ReadFileToString(ManifestPath(), &body));
  if (body.size() < 8 + 8 + 8 + 8 + 4 + 4) {
    return Status::Corruption("manifest too short");
  }
  uint32_t stored_crc =
      UnmaskCrc(DecodeFixed32(body.data() + body.size() - 4));
  if (stored_crc != Crc32c(body.data(), body.size() - 4)) {
    return Status::Corruption("manifest checksum mismatch");
  }

  Slice in(body.data(), body.size() - 4);
  uint64_t magic;
  GetFixed64(&in, &magic);
  if (magic != kManifestMagicV1 && magic != kManifestMagicV2) {
    return Status::Corruption("bad manifest magic");
  }
  const bool has_format_version = magic == kManifestMagicV2;
  uint64_t next_file = 0;
  GetFixed64(&in, &next_file);
  next_file_number_.store(next_file);
  GetFixed64(&in, &last_seq_);
  GetFixed64(&in, &log_number_);
  uint32_t count;
  GetFixed32(&in, &count);

  levels_.assign(Options::kNumLevels, {});
  for (uint32_t i = 0; i < count; i++) {
    uint32_t level;
    FileMeta f;
    Slice smallest, largest;
    if (!GetFixed32(&in, &level) || level >= Options::kNumLevels ||
        !GetFixed64(&in, &f.number) || !GetFixed64(&in, &f.file_size) ||
        !GetFixed64(&in, &f.num_entries) ||
        (has_format_version && !GetFixed32(&in, &f.format_version)) ||
        !GetLengthPrefixedSlice(&in, &smallest) ||
        !GetLengthPrefixedSlice(&in, &largest)) {
      return Status::Corruption("bad manifest file record");
    }
    f.smallest = smallest.ToString();
    f.largest = largest.ToString();
    levels_[level].push_back(std::move(f));
  }
  *found = true;
  return Status::OK();
}

bool VersionSet::AnyClaimed(const std::vector<FileMeta>& files) const {
  for (const auto& f : files) {
    if (claimed_.count(f.number)) return true;
  }
  return false;
}

void VersionSet::ClaimFiles(const std::vector<FileMeta>& files) {
  for (const auto& f : files) claimed_.insert(f.number);
}

void VersionSet::ReleaseFiles(const std::vector<FileMeta>& files) {
  for (const auto& f : files) claimed_.erase(f.number);
}

Status VersionSet::LogAndApply(const VersionEdit& edit) {
  for (uint64_t number : edit.removed) {
    for (auto& level : levels_) {
      level.erase(std::remove_if(
                      level.begin(), level.end(),
                      [number](const FileMeta& f) { return f.number == number; }),
                  level.end());
    }
  }
  for (const auto& add : edit.added) {
    levels_[add.level].push_back(add.file);
  }
  // Keep levels >= 1 ordered by smallest key (they hold disjoint ranges
  // under leveled compaction).
  for (int level = 1; level < Options::kNumLevels; level++) {
    std::sort(levels_[level].begin(), levels_[level].end(),
              [](const FileMeta& a, const FileMeta& b) {
                return Slice(a.smallest).Compare(Slice(b.smallest)) < 0;
              });
  }
  if (edit.has_log_number) log_number_ = edit.log_number;
  return Persist();
}

}  // namespace apmbench::lsm
