#ifndef APMBENCH_LSM_BLOOM_H_
#define APMBENCH_LSM_BLOOM_H_

#include <string>
#include <vector>

#include "common/slice.h"

namespace apmbench::lsm {

/// Standard double-hashed bloom filter as used per SSTable (Cassandra and
/// HBase both keep one bloom filter per table to skip files on reads).
class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key);

  void AddKey(const Slice& key);

  /// Serializes the filter over all added keys; format is
  /// [bitmap bytes][1-byte probe count].
  std::string Finish();

 private:
  int bits_per_key_;
  int num_probes_;
  std::vector<uint32_t> key_hashes_;
};

/// Returns true when `key` may be in the set encoded by `filter` (never a
/// false negative). An empty filter matches everything.
bool BloomFilterMayMatch(const Slice& filter, const Slice& key);

/// Builds a bloom filter over the distinct `prefix_length`-byte prefixes
/// of a sorted key stream (keys shorter than the prefix length contribute
/// their full bytes). Because keys arrive sorted, equal prefixes are
/// consecutive and a last-prefix comparison suffices to dedup, so the
/// filter is sized by distinct prefixes rather than keys. Probe the
/// result with BloomFilterMayMatch(filter, clipped_prefix) — the same
/// wire format as the full-key filter.
class PrefixBloomBuilder {
 public:
  PrefixBloomBuilder(int bits_per_key, size_t prefix_length);

  /// Adds the prefix of `key` unless it equals the previous key's prefix.
  void AddKey(const Slice& key);

  std::string Finish() { return builder_.Finish(); }

  /// Distinct prefixes added so far.
  size_t NumPrefixes() const { return num_prefixes_; }

 private:
  BloomFilterBuilder builder_;
  const size_t prefix_length_;
  std::string last_prefix_;
  size_t num_prefixes_ = 0;
  bool has_last_ = false;
};

}  // namespace apmbench::lsm

#endif  // APMBENCH_LSM_BLOOM_H_
