#ifndef APMBENCH_LSM_BLOOM_H_
#define APMBENCH_LSM_BLOOM_H_

#include <string>
#include <vector>

#include "common/slice.h"

namespace apmbench::lsm {

/// Standard double-hashed bloom filter as used per SSTable (Cassandra and
/// HBase both keep one bloom filter per table to skip files on reads).
class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key);

  void AddKey(const Slice& key);

  /// Serializes the filter over all added keys; format is
  /// [bitmap bytes][1-byte probe count].
  std::string Finish();

 private:
  int bits_per_key_;
  int num_probes_;
  std::vector<uint32_t> key_hashes_;
};

/// Returns true when `key` may be in the set encoded by `filter` (never a
/// false negative). An empty filter matches everything.
bool BloomFilterMayMatch(const Slice& filter, const Slice& key);

}  // namespace apmbench::lsm

#endif  // APMBENCH_LSM_BLOOM_H_
