#ifndef APMBENCH_LSM_ITERATOR_H_
#define APMBENCH_LSM_ITERATOR_H_

#include <memory>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace apmbench::lsm {

/// Ordered cursor over key/value entries. Entries may be tombstones
/// (deletion markers); most callers use a DedupIterator on top, which
/// resolves shadowing and hides tombstones.
class Iterator {
 public:
  virtual ~Iterator() = default;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  /// Positions at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;

  /// Only valid while Valid() is true.
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
  virtual bool IsTombstone() const = 0;
  /// Monotone write sequence number; recency is decided per entry (as
  /// Cassandra does with cell timestamps) because compaction strategies
  /// like size-tiered merge arbitrary subsets of tables, making file
  /// numbers useless for ordering.
  virtual uint64_t seq() const = 0;

  virtual Status status() const = 0;
};

/// Merges several child iterators into one stream ordered by
/// (key ascending, seq descending). Duplicate keys across children are all
/// emitted, newest first.
std::unique_ptr<Iterator> NewMergingIterator(
    std::vector<std::unique_ptr<Iterator>> children);

/// Keeps only the newest entry of each key from a merging iterator and,
/// when `skip_tombstones` is set, hides deleted keys.
std::unique_ptr<Iterator> NewDedupIterator(std::unique_ptr<Iterator> input,
                                           bool skip_tombstones);

}  // namespace apmbench::lsm

#endif  // APMBENCH_LSM_ITERATOR_H_
