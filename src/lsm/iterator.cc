#include "lsm/iterator.h"

#include <string>

namespace apmbench::lsm {

namespace {

/// N-way merge by (key, child index). Children must each be sorted with
/// unique keys; across children duplicates are allowed and are emitted
/// newest (lowest index) first.
class MergingIterator final : public Iterator {
 public:
  explicit MergingIterator(std::vector<std::unique_ptr<Iterator>> children)
      : children_(std::move(children)) {}

  bool Valid() const override { return current_ >= 0; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    FindSmallest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) child->Seek(target);
    FindSmallest();
  }

  void Next() override {
    children_[current_]->Next();
    FindSmallest();
  }

  Slice key() const override { return children_[current_]->key(); }
  Slice value() const override { return children_[current_]->value(); }
  bool IsTombstone() const override {
    return children_[current_]->IsTombstone();
  }
  uint64_t seq() const override { return children_[current_]->seq(); }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    current_ = -1;
    for (int i = 0; i < static_cast<int>(children_.size()); i++) {
      if (!children_[i]->Valid()) continue;
      if (current_ < 0) {
        current_ = i;
        continue;
      }
      int cmp = children_[i]->key().Compare(children_[current_]->key());
      // Ties are won by the newest entry so duplicates stream newest-first.
      if (cmp < 0 ||
          (cmp == 0 && children_[i]->seq() > children_[current_]->seq())) {
        current_ = i;
      }
    }
  }

  std::vector<std::unique_ptr<Iterator>> children_;
  int current_ = -1;
};

/// Collapses duplicate keys (keeping the first, i.e. newest, occurrence)
/// and optionally hides tombstones.
class DedupIterator final : public Iterator {
 public:
  DedupIterator(std::unique_ptr<Iterator> input, bool skip_tombstones)
      : input_(std::move(input)), skip_tombstones_(skip_tombstones) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    input_->SeekToFirst();
    has_last_key_ = false;
    Settle();
  }

  void Seek(const Slice& target) override {
    input_->Seek(target);
    has_last_key_ = false;
    Settle();
  }

  void Next() override {
    input_->Next();
    Settle();
  }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return Slice(value_); }
  bool IsTombstone() const override { return tombstone_; }
  uint64_t seq() const override { return seq_; }
  Status status() const override { return input_->status(); }

 private:
  /// Advances input_ past shadowed duplicates and (optionally) deleted
  /// keys, capturing the surviving entry.
  void Settle() {
    valid_ = false;
    while (input_->Valid()) {
      Slice k = input_->key();
      if (has_last_key_ && k == Slice(last_key_)) {
        input_->Next();  // shadowed by a newer entry already emitted
        continue;
      }
      // Newest entry for this key.
      last_key_.assign(k.data(), k.size());
      has_last_key_ = true;
      if (skip_tombstones_ && input_->IsTombstone()) {
        input_->Next();
        continue;
      }
      key_ = last_key_;
      value_.assign(input_->value().data(), input_->value().size());
      tombstone_ = input_->IsTombstone();
      seq_ = input_->seq();
      valid_ = true;
      return;
    }
  }

  std::unique_ptr<Iterator> input_;
  bool skip_tombstones_;
  bool valid_ = false;
  bool has_last_key_ = false;
  std::string last_key_;
  std::string key_;
  std::string value_;
  uint64_t seq_ = 0;
  bool tombstone_ = false;
};

}  // namespace

std::unique_ptr<Iterator> NewMergingIterator(
    std::vector<std::unique_ptr<Iterator>> children) {
  return std::make_unique<MergingIterator>(std::move(children));
}

std::unique_ptr<Iterator> NewDedupIterator(std::unique_ptr<Iterator> input,
                                           bool skip_tombstones) {
  return std::make_unique<DedupIterator>(std::move(input), skip_tombstones);
}

}  // namespace apmbench::lsm
