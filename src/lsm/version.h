#ifndef APMBENCH_LSM_VERSION_H_
#define APMBENCH_LSM_VERSION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "lsm/options.h"

namespace apmbench::lsm {

/// Metadata of one SSTable known to the database.
struct FileMeta {
  uint64_t number = 0;
  uint64_t file_size = 0;
  uint64_t num_entries = 0;
  /// On-disk table format the file was written with (kTableFormatV1/V2).
  /// 0 = unknown: the file was recorded by a pre-versioning manifest; the
  /// table footer remains authoritative either way (Table::Open reads
  /// it), this field just gives the manifest and stats a cheap view.
  uint32_t format_version = 0;
  std::string smallest;
  std::string largest;
};

/// A batch of metadata changes applied atomically: files added to a level
/// and files removed (identified by number, from any level).
struct VersionEdit {
  struct Addition {
    int level;
    FileMeta file;
  };
  std::vector<Addition> added;
  std::vector<uint64_t> removed;
  /// When set (non-zero), updates the WAL number whose contents are now
  /// fully contained in SSTables.
  uint64_t log_number = 0;
  bool has_log_number = false;
};

/// Tracks the live set of SSTables per level plus the file-number,
/// sequence-number, and WAL counters. Persisted as a whole-state MANIFEST
/// file rewritten atomically (write temp + rename) on every change; at the
/// scale of this engine the rewrite is a few kilobytes.
///
/// Level usage: size-tiered compaction keeps every table in level 0;
/// leveled compaction uses levels 0..kNumLevels-1 with disjoint key ranges
/// within levels >= 1.
///
/// Thread-compatibility: externally synchronized by the DB mutex.
class VersionSet {
 public:
  VersionSet(const Options& options, Env* env);

  /// Loads the MANIFEST if present; `*found` reports whether one existed.
  Status Recover(bool* found);

  /// Applies `edit` in memory and persists the new state.
  Status LogAndApply(const VersionEdit& edit);

  /// Thread-safe: table/WAL numbers are allocated by background work
  /// while writers hold the DB mutex.
  uint64_t NewFileNumber() { return next_file_number_.fetch_add(1); }
  /// Exposes the counter so recovery can bump it past replayed WAL files.
  void BumpFileNumber(uint64_t floor) {
    uint64_t cur = next_file_number_.load();
    while (cur <= floor && !next_file_number_.compare_exchange_weak(cur, floor + 1)) {
    }
  }

  uint64_t last_seq() const { return last_seq_; }
  void set_last_seq(uint64_t seq) { last_seq_ = seq; }

  uint64_t log_number() const { return log_number_; }
  void set_log_number(uint64_t n) { log_number_ = n; }

  const std::vector<FileMeta>& files(int level) const {
    return levels_[level];
  }
  int NumFiles(int level) const {
    return static_cast<int>(levels_[level].size());
  }
  uint64_t LevelBytes(int level) const;
  int NumLevels() const { return Options::kNumLevels; }
  uint64_t TotalFiles() const;

  /// Persists current state; called internally by LogAndApply, exposed for
  /// the initial manifest of a fresh database.
  Status Persist();

  // --- In-flight compaction claims (externally synchronized, like the
  // rest of this class). A compaction job claims its input files at pick
  // time; picking skips claimed files, so two concurrently running jobs
  // can never merge overlapping inputs. Claims survive until the job
  // releases them (success or failure).

  /// True if any file in `files` is claimed by an in-flight job.
  bool AnyClaimed(const std::vector<FileMeta>& files) const;
  bool IsClaimed(uint64_t number) const {
    return claimed_.count(number) != 0;
  }
  void ClaimFiles(const std::vector<FileMeta>& files);
  void ReleaseFiles(const std::vector<FileMeta>& files);
  size_t NumClaimed() const { return claimed_.size(); }

  /// Round-robin cursor for picking the next file to compact out of
  /// `level` (LevelDB's compact_pointer_): the largest key of the last
  /// compacted file. Empty = start from the beginning.
  const std::string& CompactPointer(int level) const {
    return compact_pointer_[level];
  }
  void SetCompactPointer(int level, std::string key) {
    compact_pointer_[level] = std::move(key);
  }

 private:
  std::string ManifestPath() const;

  const Options& options_;
  Env* env_;
  std::vector<std::vector<FileMeta>> levels_;
  std::atomic<uint64_t> next_file_number_{1};
  uint64_t last_seq_ = 0;
  uint64_t log_number_ = 0;
  std::unordered_set<uint64_t> claimed_;
  std::vector<std::string> compact_pointer_{Options::kNumLevels};
};

}  // namespace apmbench::lsm

#endif  // APMBENCH_LSM_VERSION_H_
