#include "lsm/memtable.h"

namespace apmbench::lsm {

namespace {
// Per-entry bookkeeping overhead charged against the memtable budget
// (skip list node, pointers, string headers).
constexpr size_t kEntryOverhead = 64;
}  // namespace

void MemTable::Put(const Slice& key, const Slice& value, uint64_t seq) {
  Entry entry;
  entry.tombstone = false;
  entry.value = value.ToString();
  bytes_.fetch_add(key.size() + value.size() + kEntryOverhead,
                   std::memory_order_relaxed);
  table_.Insert(MemKey{key.ToString(), seq}, std::move(entry));
}

void MemTable::Delete(const Slice& key, uint64_t seq) {
  Entry entry;
  entry.tombstone = true;
  bytes_.fetch_add(key.size() + kEntryOverhead, std::memory_order_relaxed);
  table_.Insert(MemKey{key.ToString(), seq}, std::move(entry));
}

MemTable::GetResult MemTable::Get(const Slice& key, std::string* value,
                                  uint64_t* seq, uint64_t seq_limit) const {
  // The newest version with sequence <= seq_limit is the first entry at or
  // after (key, seq_limit) in (key asc, seq desc) order.
  Table::Iterator iter(&table_);
  iter.Seek(MemKey{key.ToString(), seq_limit});
  if (!iter.Valid() || Slice(iter.key().user_key).Compare(key) != 0) {
    return GetResult::kAbsent;
  }
  const Entry& entry = iter.value();
  if (seq != nullptr) *seq = iter.key().seq;
  if (entry.tombstone) return GetResult::kDeleted;
  *value = entry.value;
  return GetResult::kFound;
}

class MemTableIterator final : public Iterator {
 public:
  MemTableIterator(const MemTable::Table* table, uint64_t seq_limit)
      : iter_(table), seq_limit_(seq_limit) {}

  bool Valid() const override { return iter_.Valid(); }
  void SeekToFirst() override {
    iter_.SeekToFirst();
    SkipInvisible();
  }
  void Seek(const Slice& target) override {
    // (target, kMaxSeq) sorts before every stored version of `target`.
    iter_.Seek(MemTable::MemKey{target.ToString(), MemTable::kMaxSeq});
    SkipInvisible();
  }
  void Next() override {
    iter_.Next();
    SkipInvisible();
  }

  Slice key() const override { return Slice(iter_.key().user_key); }
  Slice value() const override { return Slice(iter_.value().value); }
  bool IsTombstone() const override { return iter_.value().tombstone; }
  uint64_t seq() const override { return iter_.key().seq; }
  Status status() const override { return Status::OK(); }

 private:
  void SkipInvisible() {
    while (iter_.Valid() && iter_.key().seq > seq_limit_) iter_.Next();
  }

  MemTable::Table::Iterator iter_;
  const uint64_t seq_limit_;
};

std::unique_ptr<Iterator> MemTable::NewIterator(uint64_t seq_limit) const {
  return std::make_unique<MemTableIterator>(&table_, seq_limit);
}

}  // namespace apmbench::lsm
