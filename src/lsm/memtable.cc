#include "lsm/memtable.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/coding.h"

namespace apmbench::lsm {

namespace {

constexpr uint8_t kFlagTombstone = 0x1;

/// Stack-or-heap buffer holding the `klen | key | seq` prefix of the entry
/// encoding, used to seek the skip list without allocating for typical key
/// sizes (APM keys are well under the inline capacity).
class LookupKey {
 public:
  LookupKey(const Slice& key, uint64_t seq) {
    const size_t needed = VarintLength(key.size()) + key.size() + 8;
    char* dst = needed <= sizeof(inline_) ? inline_
                                          : (heap_ = new char[needed]);
    start_ = dst;
    dst = EncodeVarint32(dst, static_cast<uint32_t>(key.size()));
    std::memcpy(dst, key.data(), key.size());
    EncodeFixed64(dst + key.size(), seq);
  }
  ~LookupKey() { delete[] heap_; }

  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;

  const char* entry() const { return start_; }

 private:
  const char* start_;
  char* heap_ = nullptr;
  char inline_[192];
};

}  // namespace

MemTable::MemTable(size_t arena_block_bytes, int num_shards) {
  assert(num_shards >= 1 && num_shards <= kMaxShards &&
         (num_shards & (num_shards - 1)) == 0);
  num_shards = std::max(1, num_shards);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; i++) {
    shards_.push_back(std::make_unique<Shard>(arena_block_bytes));
  }
}

uint32_t MemTable::ShardOf(const Slice& key, int num_shards) {
  if (num_shards <= 1) return 0;
  // Accumulate 8-byte words with a golden-ratio multiply, then run the
  // splitmix64 finalizer (the same mix as common/cache.h CacheKeyHash) so
  // the top bits used for shard selection are well distributed even for
  // APM-style keys that differ only in a numeric suffix.
  uint64_t x = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(key.size());
  const char* p = key.data();
  size_t n = key.size();
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    x = (x ^ word) * 0x9e3779b97f4a7c15ULL;
    p += 8;
    n -= 8;
  }
  uint64_t tail = 0;
  std::memcpy(&tail, p, n);
  x ^= tail;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<uint32_t>(x >> 32) &
         static_cast<uint32_t>(num_shards - 1);
}

MemTable::DecodedEntry MemTable::DecodeEntry(const char* p) {
  DecodedEntry entry;
  uint32_t klen = 0;
  // Entries are self-produced, so decode with a generous bound instead of a
  // real limit; a varint32 occupies at most 5 bytes.
  p = GetVarint32Ptr(p, p + 5, &klen);
  assert(p != nullptr);
  entry.key = Slice(p, klen);
  p += klen;
  entry.seq = DecodeFixed64(p);
  p += 8;
  entry.tombstone = (static_cast<uint8_t>(*p) & kFlagTombstone) != 0;
  p += 1;
  uint32_t vlen = 0;
  p = GetVarint32Ptr(p, p + 5, &vlen);
  assert(p != nullptr);
  entry.value = Slice(p, vlen);
  return entry;
}

int MemTable::EntryCompare::operator()(const char* a, const char* b) const {
  uint32_t aklen = 0, bklen = 0;
  const char* ak = GetVarint32Ptr(a, a + 5, &aklen);
  const char* bk = GetVarint32Ptr(b, b + 5, &bklen);
  assert(ak != nullptr && bk != nullptr);
  int c = Slice(ak, aklen).Compare(Slice(bk, bklen));
  if (c != 0) return c;
  // Newer versions sort first so a seek to (key, limit) lands on the
  // newest visible version.
  const uint64_t aseq = DecodeFixed64(ak + aklen);
  const uint64_t bseq = DecodeFixed64(bk + bklen);
  if (aseq > bseq) return -1;
  if (aseq < bseq) return 1;
  return 0;
}

void MemTable::Add(int shard, const Slice& key, const Slice& value,
                   uint64_t seq, bool tombstone) {
  Shard& s = *shards_[static_cast<size_t>(shard)];
  const size_t vlen = tombstone ? 0 : value.size();
  const size_t bytes = VarintLength(key.size()) + key.size() + 8 + 1 +
                       VarintLength(vlen) + vlen;
  char* buf = s.arena.Allocate(bytes);
  char* p = EncodeVarint32(buf, static_cast<uint32_t>(key.size()));
  std::memcpy(p, key.data(), key.size());
  p += key.size();
  EncodeFixed64(p, seq);
  p += 8;
  *p++ = tombstone ? static_cast<char>(kFlagTombstone) : 0;
  p = EncodeVarint32(p, static_cast<uint32_t>(vlen));
  if (vlen > 0) std::memcpy(p, value.data(), vlen);
  s.table.Insert(buf, 0);
}

void MemTable::Put(const Slice& key, const Slice& value, uint64_t seq) {
  Add(RouteShard(key), key, value, seq, /*tombstone=*/false);
}

void MemTable::Delete(const Slice& key, uint64_t seq) {
  Add(RouteShard(key), key, Slice(), seq, /*tombstone=*/true);
}

void MemTable::PutToShard(int shard, const Slice& key, const Slice& value,
                          uint64_t seq) {
  Add(shard, key, value, seq, /*tombstone=*/false);
}

void MemTable::DeleteToShard(int shard, const Slice& key, uint64_t seq) {
  Add(shard, key, Slice(), seq, /*tombstone=*/true);
}

MemTable::GetResult MemTable::Get(const Slice& key, std::string* value,
                                  uint64_t* seq, uint64_t seq_limit) const {
  // The newest version with sequence <= seq_limit is the first entry at or
  // after (key, seq_limit) in (key asc, seq desc) order — and every
  // version of the key lives in its one shard.
  const Shard& shard = *shards_[static_cast<size_t>(RouteShard(key))];
  Table::Iterator iter(&shard.table);
  LookupKey lookup(key, seq_limit);
  iter.Seek(lookup.entry());
  if (!iter.Valid()) return GetResult::kAbsent;
  DecodedEntry entry = DecodeEntry(iter.key());
  if (entry.key.Compare(key) != 0) return GetResult::kAbsent;
  if (seq != nullptr) *seq = entry.seq;
  if (entry.tombstone) return GetResult::kDeleted;
  value->assign(entry.value.data(), entry.value.size());
  return GetResult::kFound;
}

size_t MemTable::ApproximateMemoryUsage() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->arena.MemoryUsage();
  return total;
}

size_t MemTable::EntryCount() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->table.size();
  return total;
}

class MemTableIterator final : public Iterator {
 public:
  MemTableIterator(const MemTable::Table* table, uint64_t seq_limit)
      : iter_(table), seq_limit_(seq_limit) {}

  bool Valid() const override { return iter_.Valid(); }
  void SeekToFirst() override {
    iter_.SeekToFirst();
    SkipInvisible();
  }
  void Seek(const Slice& target) override {
    // (target, kMaxSeq) sorts before every stored version of `target`.
    LookupKey lookup(target, MemTable::kMaxSeq);
    iter_.Seek(lookup.entry());
    SkipInvisible();
  }
  void Next() override {
    iter_.Next();
    SkipInvisible();
  }

  Slice key() const override { return entry_.key; }
  Slice value() const override { return entry_.value; }
  bool IsTombstone() const override { return entry_.tombstone; }
  uint64_t seq() const override { return entry_.seq; }
  Status status() const override { return Status::OK(); }

 private:
  void SkipInvisible() {
    while (iter_.Valid()) {
      entry_ = MemTable::DecodeEntry(iter_.key());
      if (entry_.seq <= seq_limit_) return;
      iter_.Next();
    }
  }

  MemTable::Table::Iterator iter_;
  MemTable::DecodedEntry entry_;
  const uint64_t seq_limit_;
};

std::unique_ptr<Iterator> MemTable::NewIterator(uint64_t seq_limit) const {
  if (shards_.size() == 1) {
    // Single shard: the plain skip-list cursor, no merge layer — the
    // memtable_shards=1 configuration behaves exactly like the pre-shard
    // engine.
    return std::make_unique<MemTableIterator>(&shards_[0]->table, seq_limit);
  }
  // Shard runs are disjoint by key (a key's every version lives in its
  // hash shard), so the k-way merge yields the same (key asc, seq desc)
  // stream a single list would.
  std::vector<std::unique_ptr<Iterator>> runs;
  runs.reserve(shards_.size());
  for (const auto& shard : shards_) {
    runs.push_back(
        std::make_unique<MemTableIterator>(&shard->table, seq_limit));
  }
  return NewMergingIterator(std::move(runs));
}

}  // namespace apmbench::lsm
