#include "lsm/memtable.h"

namespace apmbench::lsm {

namespace {
// Per-entry bookkeeping overhead charged against the memtable budget
// (skip list node, pointers, string headers).
constexpr size_t kEntryOverhead = 64;
}  // namespace

void MemTable::Put(const Slice& key, const Slice& value, uint64_t seq) {
  Entry entry;
  entry.seq = seq;
  entry.tombstone = false;
  entry.value = value.ToString();
  bytes_ += key.size() + value.size() + kEntryOverhead;
  table_.Insert(key.ToString(), std::move(entry));
}

void MemTable::Delete(const Slice& key, uint64_t seq) {
  Entry entry;
  entry.seq = seq;
  entry.tombstone = true;
  bytes_ += key.size() + kEntryOverhead;
  table_.Insert(key.ToString(), std::move(entry));
}

MemTable::GetResult MemTable::Get(const Slice& key, std::string* value,
                                  uint64_t* seq) const {
  const Entry* entry = table_.Find(key.ToString());
  if (entry == nullptr) return GetResult::kAbsent;
  if (seq != nullptr) *seq = entry->seq;
  if (entry->tombstone) return GetResult::kDeleted;
  *value = entry->value;
  return GetResult::kFound;
}

class MemTableIterator final : public Iterator {
 public:
  explicit MemTableIterator(const MemTable::Table* table) : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void Seek(const Slice& target) override { iter_.Seek(target.ToString()); }
  void Next() override { iter_.Next(); }

  Slice key() const override { return Slice(iter_.key()); }
  Slice value() const override { return Slice(iter_.value().value); }
  bool IsTombstone() const override { return iter_.value().tombstone; }
  uint64_t seq() const override { return iter_.value().seq; }
  Status status() const override { return Status::OK(); }

 private:
  MemTable::Table::Iterator iter_;
};

std::unique_ptr<Iterator> MemTable::NewIterator() const {
  return std::make_unique<MemTableIterator>(&table_);
}

}  // namespace apmbench::lsm
