#ifndef APMBENCH_LSM_BLOCK_CACHE_H_
#define APMBENCH_LSM_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/cache.h"

namespace apmbench::lsm {

/// The SSTable block cache: a thin typed wrapper over the generic
/// ShardedLRUCache (see common/cache.h), keyed by (file number, block
/// offset). Models the key/row caches the paper's stores rely on for
/// their memory-bound performance.
///
/// Lookup/Insert return a BlockHandle that *pins* the block in place:
/// readers parse the cached bytes directly (zero-copy) and the entry
/// cannot be evicted — though it stays charged — until the handle is
/// destroyed. Index and bloom-filter blocks are pinned this way for a
/// Table's whole lifetime, so they are cache-charged without per-table
/// heap copies.
///
/// Thread-safety: all methods are safe to call concurrently; the shards
/// make concurrent Lookups on different blocks contention-free, and the
/// stats counters are atomics.
class BlockCache {
 public:
  explicit BlockCache(size_t capacity_bytes,
                      int shard_bits = kDefaultCacheShardBits)
      : cache_(capacity_bytes, shard_bits) {}

  /// A move-only pin on a block's bytes. Either references a cache entry
  /// (released on destruction) or owns an uncached block outright (the
  /// fill_cache=false / no-cache path); readers treat both identically.
  class BlockHandle {
   public:
    BlockHandle() = default;
    ~BlockHandle() { Reset(); }

    BlockHandle(BlockHandle&& other) noexcept
        : cache_(other.cache_),
          handle_(other.handle_),
          data_(other.data_),
          owned_(std::move(other.owned_)) {
      other.cache_ = nullptr;
      other.handle_ = nullptr;
      other.data_ = nullptr;
    }
    BlockHandle& operator=(BlockHandle&& other) noexcept {
      if (this != &other) {
        Reset();
        cache_ = other.cache_;
        handle_ = other.handle_;
        data_ = other.data_;
        owned_ = std::move(other.owned_);
        other.cache_ = nullptr;
        other.handle_ = nullptr;
        other.data_ = nullptr;
      }
      return *this;
    }
    BlockHandle(const BlockHandle&) = delete;
    BlockHandle& operator=(const BlockHandle&) = delete;

    const std::string* get() const { return data_; }
    const std::string& operator*() const { return *data_; }
    explicit operator bool() const { return data_ != nullptr; }
    bool operator==(std::nullptr_t) const { return data_ == nullptr; }
    bool operator!=(std::nullptr_t) const { return data_ != nullptr; }

    void Reset() {
      if (handle_ != nullptr) {
        cache_->Release(handle_);
        handle_ = nullptr;
        cache_ = nullptr;
      }
      owned_.reset();
      data_ = nullptr;
    }

   private:
    friend class BlockCache;
    ShardedLRUCache* cache_ = nullptr;
    ShardedLRUCache::Handle* handle_ = nullptr;
    const std::string* data_ = nullptr;
    std::shared_ptr<const std::string> owned_;
  };

  /// Returns a pinned handle to the cached block, or an empty handle.
  BlockHandle Lookup(uint64_t file_number, uint64_t offset) {
    BlockHandle handle;
    ShardedLRUCache::Handle* h = cache_.Lookup(file_number, offset);
    if (h != nullptr) {
      handle.cache_ = &cache_;
      handle.handle_ = h;
      handle.data_ = static_cast<const std::string*>(ShardedLRUCache::Value(h));
    }
    return handle;
  }

  /// Approximate resident bytes one cached entry occupies beyond its
  /// block payload: the heap std::string header, the cache's Handle
  /// (key, links, refcount, owner-list pointers), the shard hash-table
  /// node, and allocator headers. Charged on every insert so that the
  /// small blocks of the v2 format (prefix-compressed, often well under
  /// block_size) cannot blow past the configured budget through
  /// per-entry bookkeeping the old payload-only charge never counted.
  static constexpr size_t kEntryOverheadBytes = sizeof(std::string) + 160;

  /// Inserts `block` (replacing any previous entry) and returns a pinned
  /// handle to the now-cache-owned bytes. Never fails: over-capacity
  /// inserts are still returned pinned, just not retained on release.
  /// The charge is the entry's actual footprint — every payload byte the
  /// string holds (for v2 blocks that includes the restart-point array
  /// and restart-count trailer) plus kEntryOverheadBytes — rather than a
  /// coarse payload estimate.
  BlockHandle Insert(uint64_t file_number, uint64_t offset,
                     std::string block) {
    auto* value = new std::string(std::move(block));
    const size_t charge = value->capacity() + kEntryOverheadBytes;
    inserted_payload_bytes_.fetch_add(value->size(),
                                      std::memory_order_relaxed);
    inserted_charged_bytes_.fetch_add(charge, std::memory_order_relaxed);
    ShardedLRUCache::Handle* h = cache_.Insert(
        file_number, offset, value, charge,
        [](void* v) { delete static_cast<std::string*>(v); });
    BlockHandle handle;
    handle.cache_ = &cache_;
    handle.handle_ = h;
    handle.data_ = static_cast<const std::string*>(ShardedLRUCache::Value(h));
    return handle;
  }

  /// Wraps an uncached block in a handle (fill_cache=false / cache-less
  /// tables), so readers have one code path.
  static BlockHandle Wrap(std::string block) {
    BlockHandle handle;
    handle.owned_ = std::make_shared<const std::string>(std::move(block));
    handle.data_ = handle.owned_.get();
    return handle;
  }

  /// Drops every block belonging to `file_number` (called when a table is
  /// deleted by compaction). O(1) per cached block of the file. Pinned
  /// readers of the dropped blocks keep their handles.
  void EvictFile(uint64_t file_number) { cache_.EvictOwner(file_number); }

  size_t charge() const { return cache_.charge(); }
  size_t capacity() const { return cache_.capacity(); }
  int num_shards() const { return cache_.num_shards(); }
  uint64_t hits() const { return cache_.hits(); }
  uint64_t misses() const { return cache_.misses(); }
  uint64_t evictions() const { return cache_.evictions(); }

  /// Cumulative insert accounting for charge accuracy: payload bytes
  /// handed to the cache vs bytes actually charged for them. The ratio
  /// payload/charged is the cache's charge accuracy; it is surfaced in
  /// DB stats / "lsm.cache-stats".
  uint64_t inserted_payload_bytes() const {
    return inserted_payload_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t inserted_charged_bytes() const {
    return inserted_charged_bytes_.load(std::memory_order_relaxed);
  }

 private:
  ShardedLRUCache cache_;
  std::atomic<uint64_t> inserted_payload_bytes_{0};
  std::atomic<uint64_t> inserted_charged_bytes_{0};
};

}  // namespace apmbench::lsm

#endif  // APMBENCH_LSM_BLOCK_CACHE_H_
