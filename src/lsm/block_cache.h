#ifndef APMBENCH_LSM_BLOCK_CACHE_H_
#define APMBENCH_LSM_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace apmbench::lsm {

/// A sharded-free, mutex-protected LRU cache of SSTable data blocks,
/// keyed by (file number, block offset). Models the key/row caches the
/// paper's stores rely on for their memory-bound performance.
class BlockCache {
 public:
  explicit BlockCache(size_t capacity_bytes);

  using BlockHandle = std::shared_ptr<const std::string>;

  /// Returns the cached block or nullptr.
  BlockHandle Lookup(uint64_t file_number, uint64_t offset);

  /// Inserts `block`, evicting least-recently-used entries beyond capacity.
  void Insert(uint64_t file_number, uint64_t offset, BlockHandle block);

  /// Drops every block belonging to `file_number` (called when a table is
  /// deleted by compaction).
  void EvictFile(uint64_t file_number);

  size_t charge() const;
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct CacheKey {
    uint64_t file_number;
    uint64_t offset;
    bool operator==(const CacheKey& other) const {
      return file_number == other.file_number && offset == other.offset;
    }
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const {
      return std::hash<uint64_t>()(k.file_number * 0x9e3779b97f4a7c15ULL ^
                                   k.offset);
    }
  };
  struct CacheEntry {
    CacheKey key;
    BlockHandle block;
  };

  void EvictIfNeeded();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<CacheEntry> lru_;  // front = most recent
  std::unordered_map<CacheKey, std::list<CacheEntry>::iterator, CacheKeyHash>
      index_;
  size_t charge_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace apmbench::lsm

#endif  // APMBENCH_LSM_BLOCK_CACHE_H_
