#ifndef APMBENCH_LSM_WAL_H_
#define APMBENCH_LSM_WAL_H_

#include <memory>
#include <string>

#include "common/env.h"
#include "common/slice.h"
#include "common/status.h"

namespace apmbench::lsm {

/// Write-ahead log (Cassandra's commit log / HBase's HLog). Records are
/// framed as [masked crc32c fixed32][length fixed32][payload]; a torn tail
/// is tolerated on recovery (everything before it is replayed).
class LogWriter {
 public:
  /// Takes ownership of `file`.
  explicit LogWriter(std::unique_ptr<WritableFile> file);

  Status AddRecord(const Slice& payload, bool sync);
  /// fsyncs everything appended so far; used at clean shutdown so a close
  /// without sync_writes still makes acknowledged records durable.
  Status Sync();
  Status Close();
  uint64_t Size() const { return file_->Size(); }

 private:
  std::unique_ptr<WritableFile> file_;
};

/// Sequential reader for recovery.
class LogReader {
 public:
  /// Loads the whole log into memory; APM log segments are bounded by the
  /// memtable size, so this is small.
  static Status Open(Env* env, const std::string& path,
                     std::unique_ptr<LogReader>* reader);

  /// Reads the next record; returns false at end of log. A damaged record
  /// stops reading; `status()` and `DroppedBytes()` report how it ended:
  ///  - a short or CRC-failing record that is the *last* thing in the file
  ///    is a torn tail from an interrupted append — benign; status() stays
  ///    OK and DroppedBytes() counts the discarded tail;
  ///  - a CRC-failing record with more data after it is mid-log damage —
  ///    the records beyond it are unrecoverable, so status() returns
  ///    Corruption and replay must surface it instead of silently
  ///    truncating acknowledged writes.
  bool ReadRecord(std::string* payload);

  /// OK, or Corruption after mid-log damage (see ReadRecord).
  Status status() const { return status_; }

  /// Bytes discarded at the point reading stopped (0 after a clean end).
  uint64_t DroppedBytes() const { return dropped_bytes_; }

  /// Number of bytes of valid records consumed so far.
  uint64_t ValidOffset() const { return offset_; }

 private:
  explicit LogReader(std::string contents)
      : contents_(std::move(contents)) {}

  std::string contents_;
  uint64_t offset_ = 0;
  uint64_t dropped_bytes_ = 0;
  Status status_;
};

}  // namespace apmbench::lsm

#endif  // APMBENCH_LSM_WAL_H_
