#ifndef APMBENCH_LSM_WAL_H_
#define APMBENCH_LSM_WAL_H_

#include <memory>
#include <string>

#include "common/env.h"
#include "common/slice.h"
#include "common/status.h"

namespace apmbench::lsm {

/// Write-ahead log (Cassandra's commit log / HBase's HLog). Records are
/// framed as [masked crc32c fixed32][length fixed32][payload]; a torn tail
/// is tolerated on recovery (everything before it is replayed).
class LogWriter {
 public:
  /// Takes ownership of `file`.
  explicit LogWriter(std::unique_ptr<WritableFile> file);

  Status AddRecord(const Slice& payload, bool sync);
  Status Close();
  uint64_t Size() const { return file_->Size(); }

 private:
  std::unique_ptr<WritableFile> file_;
};

/// Sequential reader for recovery.
class LogReader {
 public:
  /// Loads the whole log into memory; APM log segments are bounded by the
  /// memtable size, so this is small.
  static Status Open(Env* env, const std::string& path,
                     std::unique_ptr<LogReader>* reader);

  /// Reads the next record; returns false at end of log (including at a
  /// corrupt/torn tail, which truncates recovery at the last good record).
  bool ReadRecord(std::string* payload);

  /// Number of bytes of valid records consumed so far.
  uint64_t ValidOffset() const { return offset_; }

 private:
  explicit LogReader(std::string contents)
      : contents_(std::move(contents)) {}

  std::string contents_;
  uint64_t offset_ = 0;
};

}  // namespace apmbench::lsm

#endif  // APMBENCH_LSM_WAL_H_
