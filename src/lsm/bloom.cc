#include "lsm/bloom.h"

#include <cmath>

#include "common/hash.h"

namespace apmbench::lsm {

namespace {

uint32_t BloomHash(const Slice& key) {
  return MurmurHash3_32(key.data(), key.size(), 0xbc9f1d34);
}

}  // namespace

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(bits_per_key) {
  // k = ln(2) * bits/key minimizes the false-positive rate.
  num_probes_ = static_cast<int>(bits_per_key * 0.69);
  if (num_probes_ < 1) num_probes_ = 1;
  if (num_probes_ > 30) num_probes_ = 30;
}

void BloomFilterBuilder::AddKey(const Slice& key) {
  key_hashes_.push_back(BloomHash(key));
}

std::string BloomFilterBuilder::Finish() {
  size_t bits = key_hashes_.size() * static_cast<size_t>(bits_per_key_);
  if (bits < 64) bits = 64;
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string result(bytes, '\0');
  for (uint32_t h : key_hashes_) {
    // Double hashing: h, then rotate by delta per probe.
    uint32_t delta = (h >> 17) | (h << 15);
    for (int i = 0; i < num_probes_; i++) {
      uint32_t bit = h % bits;
      result[bit / 8] |= static_cast<char>(1 << (bit % 8));
      h += delta;
    }
  }
  result.push_back(static_cast<char>(num_probes_));
  return result;
}

PrefixBloomBuilder::PrefixBloomBuilder(int bits_per_key, size_t prefix_length)
    : builder_(bits_per_key), prefix_length_(prefix_length) {}

void PrefixBloomBuilder::AddKey(const Slice& key) {
  Slice prefix(key.data(), key.size() < prefix_length_ ? key.size()
                                                       : prefix_length_);
  if (has_last_ && Slice(last_prefix_).Compare(prefix) == 0) return;
  builder_.AddKey(prefix);
  last_prefix_.assign(prefix.data(), prefix.size());
  has_last_ = true;
  num_prefixes_++;
}

bool BloomFilterMayMatch(const Slice& filter, const Slice& key) {
  if (filter.size() < 2) return true;
  size_t bytes = filter.size() - 1;
  size_t bits = bytes * 8;
  int probes = filter[filter.size() - 1];
  if (probes <= 0 || probes > 30) return true;

  uint32_t h = BloomHash(key);
  uint32_t delta = (h >> 17) | (h << 15);
  for (int i = 0; i < probes; i++) {
    uint32_t bit = h % bits;
    if ((filter[bit / 8] & (1 << (bit % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace apmbench::lsm
