#ifndef APMBENCH_LSM_DB_H_
#define APMBENCH_LSM_DB_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/fanout.h"
#include "common/group_commit.h"
#include "common/rate_limiter.h"
#include "common/slice.h"
#include "common/status.h"
#include "lsm/block_cache.h"
#include "lsm/iterator.h"
#include "lsm/memtable.h"
#include "lsm/options.h"
#include "lsm/sstable.h"
#include "lsm/version.h"
#include "lsm/wal.h"

namespace apmbench::lsm {

/// A batch of writes applied atomically: one WAL record covers the whole
/// batch, so after a crash either every operation in the batch is
/// recovered or none is. Used by the HBase-like store to keep a row's
/// cells consistent.
class WriteBatch {
 public:
  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  size_t Count() const { return count_; }
  void Clear() {
    rep_.clear();
    count_ = 0;
  }

 private:
  friend class DB;
  std::string rep_;  // sequence of (type, key, value) triples
  size_t count_ = 0;
};

/// A log-structured merge-tree storage engine: writes go to a write-ahead
/// log and an in-memory memtable; full memtables are flushed to immutable
/// SSTables by a dedicated flush thread, while a pool of compaction
/// threads merges tables according to the configured compaction style
/// (size-tiered as in Cassandra, or leveled as in LevelDB/HBase major
/// compactions). Writers are admission-controlled against L0 growth
/// (slowdown/stop triggers) so ingest cannot outrun compaction
/// unboundedly; see docs/concurrency.md, "Write path".
///
/// Thread-safety: all public methods are safe to call concurrently.
/// Writers go through a LevelDB-style writer queue: concurrent
/// Put/Delete/Write callers enqueue, one leader merges the queued batches
/// into a single WAL record and performs the single append + fsync
/// *outside* the mutex. With Options::memtable_shards > 1 the memtable
/// apply is then parallel: leader and followers race through a per-group
/// shard-claim bitmap (ShardClaimSet), each applying the claimed shard's
/// sub-batch to that shard's skip list, and the last finisher publishes
/// the group to readers; with one shard (or a single-writer group) the
/// leader applies serially, exactly the pre-shard write path.
/// Readers never take the writer mutex: Get/Scan/NewSnapshotIterator copy
/// a published {mem, imm, tables} view (a pointer copy under a dedicated
/// latch, never held across I/O) and filter the live memtable by the last
/// fully applied sequence number, so scans no longer block writers and
/// writes never block reads. See docs/concurrency.md.
class DB {
 public:
  /// Counters exposed for tests, benchmarks, and calibration.
  struct Stats {
    uint64_t num_flushes = 0;
    uint64_t num_compactions = 0;
    uint64_t compaction_bytes_read = 0;
    uint64_t compaction_bytes_written = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    /// Bytes currently charged to the block cache (data blocks plus the
    /// pinned index/filter blocks) and entries evicted so far.
    uint64_t cache_charge = 0;
    uint64_t cache_evictions = 0;
    /// Charge-accuracy accounting: cumulative payload bytes handed to the
    /// cache by inserts vs the bytes actually charged for them (payload
    /// plus the per-entry resident footprint — string header, cache
    /// handle, hash-table node). payload/charged is the accuracy ratio;
    /// it drops as blocks shrink (v2 prefix compression), which is why
    /// the overhead is charged at all.
    uint64_t cache_inserted_payload_bytes = 0;
    uint64_t cache_inserted_charged_bytes = 0;
    /// Data-block cache hits/misses of the tables on each level (indexed
    /// like files_per_level).
    std::vector<uint64_t> cache_hits_per_level;
    std::vector<uint64_t> cache_misses_per_level;
    uint64_t memtable_bytes = 0;
    /// Live tables by on-disk format version (compaction migrates v1
    /// tables to the configured version, so v1 counts drain over time).
    uint64_t tables_format_v1 = 0;
    uint64_t tables_format_v2 = 0;
    /// Total on-disk index-block bytes across live tables (the v2
    /// restart-point shrink is visible here).
    uint64_t index_bytes = 0;
    /// Tables skipped by Scan via prefix bloom filters
    /// (ReadOptions::prefix_same_as_start).
    uint64_t prefix_bloom_skips = 0;
    /// Bytes discarded as torn WAL tails during the last recovery (benign
    /// interrupted appends; mid-log damage fails Open instead).
    uint64_t wal_dropped_bytes = 0;
    /// Records replayed from WALs during the last recovery.
    uint64_t wal_replayed_records = 0;
    /// Writer-queue group commits: `write_groups` counts leader rounds
    /// (== WAL appends), `grouped_writes` counts the Put/Delete/Write
    /// calls those rounds covered. grouped_writes > write_groups means
    /// batching happened.
    uint64_t write_groups = 0;
    uint64_t grouped_writes = 0;
    /// Write groups whose memtable apply ran through the parallel
    /// shard-claim path (memtable_shards > 1 and more than one writer in
    /// the group).
    uint64_t parallel_apply_groups = 0;
    /// Writers currently queued (including any in-flight leader).
    uint64_t pending_writers = 0;
    /// Write admission control (see MakeRoomForWrite): time and write
    /// groups delayed by the level0_slowdown_trigger (bounded one-time
    /// delay) and blocked at the level0_stop_trigger.
    uint64_t stall_slowdown_micros = 0;
    uint64_t stall_slowdown_writes = 0;
    uint64_t stall_stop_micros = 0;
    uint64_t stall_stop_writes = 0;
    /// Size-tiered compactions picked by the forward-progress escape
    /// valve: L0 at the stop trigger but no similarity bucket reached
    /// size_tiered_min_files, so the smallest files were merged anyway
    /// (otherwise the stall would never clear — writers are blocked, so
    /// no flush can complete a bucket).
    uint64_t stall_escape_compactions = 0;
    /// Compaction jobs executing right now and input files claimed by
    /// them (the scheduler's queue depth).
    uint64_t running_compactions = 0;
    uint64_t claimed_files = 0;
    /// Subcompaction subtasks run so far (counted only when a job was
    /// actually split).
    uint64_t num_subcompactions = 0;
    /// Tables removed from the live version but kept alive (file not yet
    /// unlinked) because an iterator or in-flight job still reads them.
    uint64_t zombie_tables = 0;
    /// Background-I/O rate limiter totals (zero when unlimited).
    uint64_t rate_limited_bytes = 0;
    uint64_t rate_limit_wait_micros = 0;
    std::vector<int> files_per_level;
    std::vector<uint64_t> bytes_per_level;
    /// Compaction work by level: jobs that output into the level, bytes
    /// read from the level's files as compaction input, bytes written
    /// into the level as compaction/flush output.
    std::vector<uint64_t> compactions_per_level;
    std::vector<uint64_t> compaction_read_per_level;
    std::vector<uint64_t> compaction_written_per_level;
  };

  /// Opens (creating or recovering) the database in `options.dir`.
  static Status Open(const Options& options, std::unique_ptr<DB>* db);

  /// Stops background work, syncs the live WAL (so a clean close never
  /// loses acknowledged writes, even with sync_writes=false), and closes
  /// it. Idempotent; returns the first shutdown error. The destructor
  /// calls this and logs any failure it cannot report.
  Status Close();

  ~DB();

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);

  /// Applies every operation in `batch` atomically (single WAL record,
  /// contiguous sequence numbers).
  Status Write(const WriteBatch& batch);

  /// Reads the newest value of `key`; NotFound for absent or deleted keys.
  Status Get(const ReadOptions& read_options, const Slice& key,
             std::string* value);

  /// Collects up to `count` live records with key >= start, in key order.
  Status Scan(const ReadOptions& read_options, const Slice& start, int count,
              std::vector<std::pair<std::string, std::string>>* out);

  /// A point-in-time iterator over the whole database. The live memtable
  /// is copied at creation and the immutable memtable / SSTables are
  /// pinned, so the iterator is safe under concurrent writes and sees
  /// exactly the data present when it was created. Tombstones are hidden.
  /// Creation cost is O(live memtable); iteration streams from disk.
  std::unique_ptr<Iterator> NewSnapshotIterator(
      const ReadOptions& read_options);

  /// Flushes the memtable to an SSTable and waits for completion.
  Status Flush();

  /// Merges every table into one run, dropping tombstones (major
  /// compaction). Waits for completion.
  Status CompactAll();

  /// Total bytes currently on disk under the database directory
  /// (SSTables + WAL + MANIFEST).
  Status DiskUsage(uint64_t* bytes);

  /// Walks every SSTable end to end: block checksums, key ordering
  /// within tables, and agreement between the manifest's key ranges /
  /// entry counts and the table contents. Returns Corruption with a
  /// description on the first violation. An operational scrub — the kind
  /// of tooling Section 6's debugging stories call for.
  Status VerifyIntegrity();

  Stats GetStats();

  /// Named introspection properties, LevelDB-style. Supported:
  ///   "lsm.cache-stats"  — multi-line per-level cache hit rates plus
  ///                        totals, charge, and capacity
  ///   "lsm.cache-charge" — bytes currently charged to the block cache
  ///   "lsm.compaction-stats" — scheduler state (running jobs, claims,
  ///                        zombies), stall totals, and per-level
  ///                        compaction counters
  /// Returns false for unknown properties.
  bool GetProperty(const Slice& property, std::string* value);

  const Options& options() const { return options_; }

 private:
  struct CompactionJob {
    std::vector<FileMeta> inputs;
    /// Level each entry of `inputs` currently lives on (parallel vector),
    /// for per-level read attribution.
    std::vector<int> input_levels;
    int output_level = 0;
    bool drop_tombstones = false;
    bool single_output = false;  // size-tiered merges a bucket into 1 table
    bool manual = false;         // a CompactAll request
  };

  /// Shared state of one parallel group apply, created by the leader and
  /// handed to every follower in the group. Owns the merged rep so
  /// helpers can keep applying after the leader's stack frame moves on.
  struct GroupApply {
    std::string rep;  // merged ops of the whole group
    uint64_t base_seq = 0;
    uint64_t last_seq = 0;
    MemTable* mem = nullptr;
    ShardClaimSet claims;
    std::mutex mu;
    std::condition_variable cv;
    /// Set (with wal_status) once the leader's WAL append returns;
    /// helpers apply nothing before that, so the memtable never runs
    /// ahead of the log.
    bool wal_done = false;
    Status wal_status;
    /// Set by whichever thread retires the final shard, after it
    /// publishes applied_seq_; the leader waits on it before popping the
    /// group.
    bool all_applied = false;
  };

  /// One queued writer; the front of `writers_` is the current leader.
  struct Writer {
    explicit Writer(const WriteBatch* b) : batch(b) {}
    const WriteBatch* batch;
    bool done = false;
    Status status;
    std::condition_variable cv;
    /// Non-null while this follower's group wants apply help; the
    /// follower clears it after one HelpApplyGroup round.
    std::shared_ptr<GroupApply> group;
  };

  /// A consistent, atomically published snapshot of the structures a read
  /// needs. Readers load it without mu_; any rotation/flush/compaction
  /// republishes it. shared_ptrs keep rotated memtables and compacted
  /// tables alive for readers still holding an old view.
  struct ReadView {
    std::shared_ptr<MemTable> mem;
    std::shared_ptr<MemTable> imm;  // null when none
    std::vector<std::shared_ptr<Table>> tables;
  };

  explicit DB(const Options& options);

  Status OpenImpl();
  Status ReplayWals();
  Status OpenTable(const FileMeta& meta);
  std::string TablePath(uint64_t number) const;
  std::string WalPath(uint64_t number) const;

  /// Write admission control + memtable rotation (RocksDB semantics).
  /// Requires `lock` held. In order: injects a bounded one-time delay
  /// when L0 reaches level0_slowdown_trigger, waits for the pending flush
  /// when both memtables are full, blocks at level0_stop_trigger until
  /// compaction catches up, and rotates the memtable/WAL when the live
  /// memtable is full.
  Status MakeRoomForWrite(std::unique_lock<std::mutex>* lock);

  /// Checks that `batch.rep_` decodes cleanly and matches its count, so a
  /// malformed batch is rejected before any sequence number is consumed or
  /// WAL byte written.
  static Status ValidateBatch(const WriteBatch& batch);

  /// Decodes `rep` (a validated concatenation of batch ops) into `mem`
  /// starting at `base_seq`. Called by the group leader without mu_ —
  /// the serial apply path (memtable_shards == 1, or a group with a
  /// single writer).
  static void ApplyBatchRep(MemTable* mem, const Slice& rep,
                            uint64_t base_seq);

  /// Applies the ops of `rep` that route to `shard`, walking the rep with
  /// a running sequence number so each op keeps its globally assigned
  /// seq. The caller must hold the shard's claim (single writer per skip
  /// list). Requires mu_ NOT held.
  static void ApplyShardOps(MemTable* mem, int shard, const Slice& rep,
                            uint64_t base_seq);

  /// One thread's share of a parallel group apply: wait for the WAL
  /// append, then claim-and-apply shards until none remain. The thread
  /// that retires the last shard publishes applied_seq_ and signals
  /// all_applied. Called by the leader and by woken followers, never
  /// with mu_ held.
  void HelpApplyGroup(const std::shared_ptr<GroupApply>& group);

  /// Republishes the reader view from mem_/imm_/tables_. Requires mu_.
  void RefreshViewLocked();

  /// Copies the current reader view under the view latch. Readers call
  /// this instead of touching mu_; the latch is held only for the
  /// shared_ptr copy, never across I/O or traversal.
  std::shared_ptr<const ReadView> CurrentView() const;

  /// The dedicated flush thread: turns imm_ into a level-0 table as soon
  /// as one exists. Never runs compactions, so a long merge cannot delay
  /// the flush that unblocks writers.
  void FlushThreadMain();
  /// One compaction-pool thread: picks (and claims) a job under mu_,
  /// merges it outside, applies the edit, releases the claims.
  void CompactionThreadMain();
  /// Flushes imm_ to a level-0 table. Called on the flush thread without
  /// the mutex held (imm_ is immutable); re-acquires it to apply.
  void BackgroundFlush();
  /// Picks the next compaction and claims its inputs so no concurrent
  /// pick can select an overlapping set. Requires mu_; the caller must
  /// ReleaseFiles(job->inputs) when the job finishes.
  bool PickCompaction(CompactionJob* job);
  /// Runs one claimed job end to end (requires mu_ NOT held): merges the
  /// inputs — split into parallel subcompactions when eligible — applies
  /// the version edit, and moves the inputs to the zombie list.
  void RunCompaction(const CompactionJob& job);
  /// Merges `inputs` over the key range [start, end) (empty = unbounded)
  /// into new tables. Requires mu_ NOT held.
  Status RunSubcompaction(const std::vector<std::shared_ptr<Table>>& inputs,
                          const CompactionJob& job, const std::string& start,
                          const std::string& end,
                          std::vector<FileMeta>* outputs,
                          std::vector<uint64_t>* numbers);
  uint64_t MaxBytesForLevel(int level) const;

  /// Unlinks zombie tables nothing references anymore. A table moves to
  /// zombies_ when a compaction drops it from the live version; its file
  /// may only be deleted once no snapshot iterator or older ReadView
  /// still holds the Table (use_count drops to the map's own reference —
  /// no new references can be minted once it left the view). Requires
  /// mu_.
  void CollectZombiesLocked();

  /// Writes the contents of `iter` into one or more new tables at
  /// `output_level` (stats attribution only — placement happens in the
  /// caller's VersionEdit). Charges the rate limiter as bytes accumulate.
  /// Requires the mutex NOT held; safe to run from several threads at
  /// once.
  Status WriteTables(Iterator* iter, bool single_output, int output_level,
                     std::vector<FileMeta>* outputs,
                     std::vector<uint64_t>* numbers);

  Options options_;
  Env* env_;
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<VersionSet> versions_;

  std::mutex mu_;
  std::condition_variable cv_;

  /// Writer queue for group commit (guarded by mu_). The leader stays at
  /// the front until it pops its whole group, so at most one thread ever
  /// appends to the WAL or inserts into mem_ at a time — that single
  /// writer is what the skip list's reader-safety contract requires.
  std::deque<Writer*> writers_;

  /// Published reader snapshot; see ReadView. Guarded by its own latch
  /// (not mu_) so readers copy the pointer without ever waiting on
  /// writer I/O. A plain mutex rather than std::atomic<shared_ptr>:
  /// libstdc++'s _Sp_atomic unlocks its internal spinlock with a relaxed
  /// RMW, which is a formal data race (and a TSan report) between a
  /// reader's pointer load and the next store.
  mutable std::mutex view_mu_;
  std::shared_ptr<const ReadView> view_;

  /// Tables a Scan skipped entirely because their prefix bloom ruled out
  /// the scan's key prefix. Updated lock-free on the read path.
  std::atomic<uint64_t> prefix_bloom_skips_{0};

  /// Highest sequence number whose write group is fully applied to the
  /// memtable. Readers filter the live memtable by it so half-applied
  /// groups stay invisible and batches remain atomic.
  std::atomic<uint64_t> applied_seq_{0};

  std::shared_ptr<MemTable> mem_;
  std::shared_ptr<MemTable> imm_;  // being flushed; null when none
  std::unique_ptr<LogWriter> wal_;
  uint64_t wal_number_ = 0;
  uint64_t imm_wal_number_ = 0;

  std::unordered_map<uint64_t, std::shared_ptr<Table>> tables_;

  /// Tables compacted out of the live version whose files cannot be
  /// unlinked yet; see CollectZombiesLocked. Guarded by mu_.
  std::unordered_map<uint64_t, std::shared_ptr<Table>> zombies_;

  std::thread flush_thread_;
  std::vector<std::thread> compaction_threads_;
  /// Wakes the compaction pool: signaled when a flush lands a new L0
  /// file, a job finishes (cascading work, claim releases), a manual
  /// compaction is requested, or at shutdown.
  std::condition_variable compaction_cv_;
  /// Shared executor for subcompaction subtasks; null when
  /// Options::subcompactions <= 1. Callers participate, so concurrent
  /// jobs can share it without deadlock.
  std::unique_ptr<FanoutExecutor> subcompaction_pool_;
  /// Token bucket charged by WriteTables; null when unlimited.
  std::shared_ptr<RateLimiter> rate_limiter_;

  bool shutting_down_ = false;
  bool closed_ = false;
  int running_compactions_ = 0;
  bool manual_compaction_requested_ = false;
  bool manual_compaction_running_ = false;
  Status bg_error_;
  Status close_status_;

  uint64_t wal_dropped_bytes_ = 0;
  uint64_t wal_replayed_records_ = 0;
  uint64_t write_groups_ = 0;
  uint64_t grouped_writes_ = 0;
  uint64_t parallel_apply_groups_ = 0;
  uint64_t num_flushes_ = 0;
  uint64_t num_compactions_ = 0;
  uint64_t num_subcompactions_ = 0;
  uint64_t stall_slowdown_micros_ = 0;
  uint64_t stall_slowdown_writes_ = 0;
  uint64_t stall_stop_micros_ = 0;
  uint64_t stall_stop_writes_ = 0;
  uint64_t stall_escape_compactions_ = 0;
  uint64_t compaction_bytes_read_ = 0;
  /// Accumulated in WriteTables, which runs outside mu_ and concurrently
  /// across flush + compaction threads — hence atomic, unlike the
  /// counters above (all mutated under mu_).
  std::atomic<uint64_t> compaction_bytes_written_{0};
  std::array<std::atomic<uint64_t>, Options::kNumLevels>
      compaction_written_per_level_{};
  /// Input attribution, updated under mu_ when a job starts.
  std::array<uint64_t, Options::kNumLevels> compaction_read_per_level_{};
  std::array<uint64_t, Options::kNumLevels> compactions_per_level_{};
};

}  // namespace apmbench::lsm

#endif  // APMBENCH_LSM_DB_H_
