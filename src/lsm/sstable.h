#ifndef APMBENCH_LSM_SSTABLE_H_
#define APMBENCH_LSM_SSTABLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/slice.h"
#include "common/status.h"
#include "lsm/block_cache.h"
#include "lsm/iterator.h"
#include "lsm/options.h"

namespace apmbench::lsm {

/// On-disk immutable sorted table (SSTable). Two format versions exist,
/// distinguished by the footer magic; readers understand both, writers
/// emit Options::format_version (see docs/format.md for byte layouts).
///
/// v1 ("APMBNCH1"): plain blocks, every entry carries its full key:
///
///   [data block]*          entries: varint klen, key, 1-byte flags,
///                          varint64 seq, varint vlen, value — sorted,
///                          unique keys; optionally LZ-compressed
///   [filter block]         bloom filter over all keys (optional)
///   [index block]          per data block: varint klen, last key,
///                          fixed64 offset, fixed32 size
///   [footer, 32 bytes]     fixed64 index_off, fixed32 index_sz,
///                          fixed64 filter_off, fixed32 filter_sz,
///                          fixed64 magic
///
/// v2 ("APMBNCH2"): prefix-compressed keys with restart points. Every
/// block (data and index) is a sequence of
///
///   varint shared | varint non_shared | varint payload_len |
///   key[shared..] | payload
///
/// followed by a restart array (fixed32 offset per restart point) and a
/// fixed32 restart count. Entries at restart points store their full key
/// (shared = 0); a seek binary-searches the restart array, then scans.
/// Data payloads are `flags u8, varint64 seq, value`; index payloads are
/// `fixed64 offset, fixed32 span`. The footer grows to 52 bytes:
///
///   fixed64 index_off, fixed32 index_sz, fixed64 filter_off,
///   fixed32 filter_sz, fixed64 prefix_filter_off,
///   fixed32 prefix_filter_sz, fixed32 prefix_bloom_length,
///   fixed32 format_version, fixed64 magic
///
/// The optional prefix filter block is a bloom over the distinct
/// `prefix_bloom_length`-byte key prefixes, letting bounded range scans
/// skip whole tables.
///
/// Each data block in either version carries a 1-byte compression type
/// plus a fixed32 masked crc32c trailer.
constexpr uint32_t kTableFormatV1 = 1;
constexpr uint32_t kTableFormatV2 = 2;
constexpr uint32_t kMaxSupportedTableFormat = kTableFormatV2;

/// Parsed table footer, version-normalized (v1 leaves the prefix-filter
/// fields zero).
struct TableFooter {
  uint32_t format_version = kTableFormatV1;
  uint64_t index_offset = 0;
  uint32_t index_size = 0;
  uint64_t filter_offset = 0;
  uint32_t filter_size = 0;
  uint64_t prefix_filter_offset = 0;
  uint32_t prefix_filter_size = 0;
  uint32_t prefix_bloom_length = 0;
};

/// Reads and validates the footer of the table at `path`. Fails with
/// Corruption on a bad magic or an unsupported format version — the same
/// dispatch Table::Open performs, exposed for tools, tests, and benches
/// that need per-file format/index geometry without opening the table.
Status ReadTableFooter(Env* env, const std::string& path, TableFooter* footer);

/// Builds one v2 block: prefix-compressed keys with restart points.
/// Generic over the payload, so data blocks and index blocks share it.
class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval);

  /// Adds an entry; keys must arrive in non-decreasing order.
  void Add(const Slice& key, const Slice& payload);

  /// Appends the restart array + count; the returned slice is valid until
  /// Reset. The builder may not be Added to again until Reset.
  Slice Finish();

  void Reset();

  /// Bytes Finish would produce right now.
  size_t CurrentSizeEstimate() const {
    return buffer_.size() + restarts_.size() * 4 + 4;
  }
  bool empty() const { return num_entries_ == 0; }
  const std::string& last_key() const { return last_key_; }

 private:
  const int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_{0};  // first restart is entry 0
  int counter_ = 0;                    // entries since the last restart
  size_t num_entries_ = 0;
  std::string last_key_;
  bool finished_ = false;
};

/// Cursor over the entries of one block, dispatching on the table format:
/// v1 blocks decode self-contained entries linearly; v2 blocks rebuild
/// prefix-compressed keys and use the restart array for Seek/SeekToLast.
/// Each positioning call returns Valid() afterwards. For v1 the cursor
/// only understands *data* blocks (v1 index blocks are parsed by
/// Table::Open); for v2 it handles any block, exposing the raw payload.
class BlockCursor {
 public:
  /// `data_block` selects the typed data-payload decode (flags/seq/value);
  /// pass false when walking a v2 index block, whose payloads are opaque
  /// to the cursor.
  BlockCursor(Slice block, uint32_t format_version, bool data_block = true);

  bool Valid() const { return valid_; }
  bool SeekToFirst();
  /// Positions at the first entry with key >= target (v2: restart binary
  /// search + short scan; v1: linear scan from the block start).
  bool Seek(const Slice& target);
  bool SeekToLast();
  bool Next();

  /// Valid while positioned. For v2 the key lives in an internal buffer
  /// that the next positioning call overwrites; copy it to retain it.
  Slice key() const { return key_; }
  /// Raw payload bytes (v2 any block; v1 data blocks reconstruct the
  /// equivalent view lazily — use the typed accessors instead).
  Slice payload() const { return payload_; }

  /// Typed accessors for *data* block payloads.
  Slice value() const { return value_; }
  uint64_t seq() const { return seq_; }
  bool tombstone() const { return tombstone_; }

  bool corrupt() const { return corrupt_; }

 private:
  bool ParseV1Entry();
  /// Decodes the v2 entry at `offset`; `offset` must start an entry and
  /// the current key buffer must hold its predecessor's key (or the entry
  /// must be a restart point).
  bool ParseV2EntryAt(size_t offset);
  bool DecodeDataPayload();
  /// Index of the last restart whose entry key is < target.
  uint32_t RestartFloor(const Slice& target);
  void MarkCorrupt();

  Slice block_;
  uint32_t format_;
  bool data_block_;
  // v2 geometry.
  size_t data_end_ = 0;      // first byte of the restart array
  uint32_t num_restarts_ = 0;
  // Position state.
  size_t next_offset_ = 0;   // v2: offset of the entry after the current
  Slice remaining_;          // v1: unparsed suffix
  std::string key_buf_;      // v2: reconstructed current key
  Slice key_;
  Slice payload_;
  Slice value_;
  uint64_t seq_ = 0;
  bool tombstone_ = false;
  bool valid_ = false;
  bool corrupt_ = false;
};

/// Writes one SSTable in Options::format_version.
class TableBuilder {
 public:
  /// Starts building table `file_number` at `path`.
  TableBuilder(const Options& options, Env* env, std::string path);
  ~TableBuilder();

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  Status Open();

  /// Adds an entry; keys must arrive in strictly increasing order.
  Status Add(const Slice& key, const Slice& value, uint64_t seq,
             bool tombstone);

  /// Writes filter(s), index, and footer, and syncs the file.
  Status Finish();

  /// Abandons the build and removes the partial file.
  void Abandon();

  uint64_t FileSize() const { return file_size_; }
  /// Bytes written plus the pending data block; valid while building.
  uint64_t CurrentSizeEstimate() const;
  uint64_t NumEntries() const { return num_entries_; }
  uint32_t format_version() const { return format_version_; }
  const std::string& smallest_key() const { return smallest_key_; }
  const std::string& largest_key() const { return largest_key_; }

 private:
  Status FlushDataBlock();
  /// Applies the compression envelope (type byte + masked crc) and
  /// appends; `*span` receives the on-disk byte count.
  Status WriteBlock(const Slice& raw, uint64_t* span);

  const Options& options_;
  Env* env_;
  std::string path_;
  std::unique_ptr<WritableFile> file_;
  uint32_t format_version_;

  // v1 state.
  std::string data_block_;
  std::string index_block_;
  // v2 state.
  std::unique_ptr<BlockBuilder> data_builder_;
  std::unique_ptr<BlockBuilder> index_builder_;
  std::unique_ptr<class PrefixBloomBuilder> prefix_filter_;
  std::string payload_scratch_;

  std::unique_ptr<class BloomFilterBuilder> filter_;

  std::string smallest_key_;
  std::string largest_key_;
  uint64_t offset_ = 0;
  uint64_t file_size_ = 0;
  uint64_t num_entries_ = 0;
  bool finished_ = false;
};

/// Reader for an SSTable, dispatching on the footer's format version.
/// The bloom-filter block(s) are pinned, cache-charged entries — the
/// table holds handles for its lifetime. A v1 index block is pinned the
/// same way with index entries slicing into the pinned bytes; a v2 index
/// block is prefix-compressed on disk, so Open materializes the full keys
/// once into a private buffer and drops the raw block. Data blocks are
/// fetched through the shared BlockCache zero-copy: readers parse the
/// pinned cached bytes in place.
class Table {
 public:
  /// Opens the table at `path`; `file_number` identifies it in the cache.
  static Status Open(const Options& options, Env* env,
                     const std::string& path, uint64_t file_number,
                     BlockCache* cache, std::unique_ptr<Table>* table);

  enum class GetResult { kFound, kDeleted, kAbsent };
  /// On kFound/kDeleted, `*seq` receives the entry's sequence number.
  Status Get(const ReadOptions& read_options, const Slice& key,
             GetResult* result, std::string* value, uint64_t* seq);

  /// Iterator over the full table. The Table must outlive it.
  std::unique_ptr<Iterator> NewIterator(const ReadOptions& read_options);

  uint64_t file_number() const { return file_number_; }
  uint64_t file_size() const { return file_size_; }
  uint32_t format_version() const { return footer_.format_version; }
  /// On-disk size of the index block (the restart-point shrink shows up
  /// here; feeds DB::Stats and the format bench).
  uint64_t index_block_bytes() const { return footer_.index_size; }

  /// Prefix length this table's prefix bloom was built over; 0 = none.
  size_t prefix_bloom_length() const { return footer_.prefix_bloom_length; }
  /// Returns false only when the table provably contains no key starting
  /// with `prefix` (which must be exactly prefix_bloom_length() bytes).
  bool MayMatchPrefix(const Slice& prefix) const;

  /// Data-block cache hits/misses observed through this table (feeds the
  /// per-level hit rates in DB::Stats).
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }

 private:
  friend class TableIterator;

  struct IndexEntry {
    Slice last_key;  // v1: into the pinned index block; v2: into
                     // index_storage_
    uint64_t offset;
    uint32_t size;
  };

  Table() = default;

  Status ReadBlock(uint64_t offset, uint32_t size,
                   BlockCache::BlockHandle* block, bool fill_cache);
  /// Index of the first block whose last_key >= key, or -1 if past the end.
  int FindBlock(const Slice& key) const;

  Options options_;
  std::unique_ptr<RandomAccessFile> file_;
  uint64_t file_number_ = 0;
  uint64_t file_size_ = 0;
  TableFooter footer_;
  BlockCache* cache_ = nullptr;
  /// Lifetime pins on the index / bloom-filter blocks. Pinned entries are
  /// charged to the cache but never evicted; EvictFile only unlinks them,
  /// the bytes stay valid until the Table goes away.
  BlockCache::BlockHandle index_block_;   // v1 only
  BlockCache::BlockHandle filter_block_;
  BlockCache::BlockHandle prefix_filter_block_;
  std::string index_storage_;             // v2: materialized index keys
  std::vector<IndexEntry> index_;
  Slice filter_;         // empty when the table has no filter
  Slice prefix_filter_;  // empty when the table has no prefix bloom
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
};

}  // namespace apmbench::lsm

#endif  // APMBENCH_LSM_SSTABLE_H_
