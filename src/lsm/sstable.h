#ifndef APMBENCH_LSM_SSTABLE_H_
#define APMBENCH_LSM_SSTABLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/slice.h"
#include "common/status.h"
#include "lsm/block_cache.h"
#include "lsm/iterator.h"
#include "lsm/options.h"

namespace apmbench::lsm {

/// On-disk immutable sorted table (SSTable). File layout:
///
///   [data block]*          entries: varint klen, key, 1-byte flags,
///                          varint64 seq, varint vlen, value — sorted,
///                          unique keys; optionally LZ-compressed
///   [filter block]         bloom filter over all keys (optional)
///   [index block]          per data block: varint klen, last key,
///                          fixed64 offset, fixed32 size
///   [footer]               fixed64 index_off, fixed32 index_sz,
///                          fixed64 filter_off, fixed32 filter_sz,
///                          fixed32 block crc of footer prefix,
///                          fixed64 magic
///
/// Each data block additionally carries a fixed32 crc32c trailer.
class TableBuilder {
 public:
  /// Starts building table `file_number` at `path`.
  TableBuilder(const Options& options, Env* env, std::string path);
  ~TableBuilder();

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  Status Open();

  /// Adds an entry; keys must arrive in strictly increasing order.
  Status Add(const Slice& key, const Slice& value, uint64_t seq,
             bool tombstone);

  /// Writes filter, index, and footer, and syncs the file.
  Status Finish();

  /// Abandons the build and removes the partial file.
  void Abandon();

  uint64_t FileSize() const { return file_size_; }
  /// Bytes written plus the pending data block; valid while building.
  uint64_t CurrentSizeEstimate() const { return offset_ + data_block_.size(); }
  uint64_t NumEntries() const { return num_entries_; }
  const std::string& smallest_key() const { return smallest_key_; }
  const std::string& largest_key() const { return largest_key_; }

 private:
  Status FlushDataBlock();

  const Options& options_;
  Env* env_;
  std::string path_;
  std::unique_ptr<WritableFile> file_;

  std::string data_block_;
  std::string index_block_;
  std::unique_ptr<class BloomFilterBuilder> filter_;

  std::string smallest_key_;
  std::string largest_key_;
  uint64_t offset_ = 0;
  uint64_t file_size_ = 0;
  uint64_t num_entries_ = 0;
  bool finished_ = false;
};

/// Reader for an SSTable. The index and bloom-filter blocks are pinned,
/// cache-charged entries — the table holds handles for its lifetime and
/// its index entries are slices into the pinned bytes, so opening a table
/// adds no private heap copies. Data blocks are fetched through the
/// shared BlockCache zero-copy: readers parse the pinned cached bytes in
/// place.
class Table {
 public:
  /// Opens the table at `path`; `file_number` identifies it in the cache.
  static Status Open(const Options& options, Env* env,
                     const std::string& path, uint64_t file_number,
                     BlockCache* cache, std::unique_ptr<Table>* table);

  enum class GetResult { kFound, kDeleted, kAbsent };
  /// On kFound/kDeleted, `*seq` receives the entry's sequence number.
  Status Get(const ReadOptions& read_options, const Slice& key,
             GetResult* result, std::string* value, uint64_t* seq);

  /// Iterator over the full table. The Table must outlive it.
  std::unique_ptr<Iterator> NewIterator(const ReadOptions& read_options);

  uint64_t file_number() const { return file_number_; }
  uint64_t file_size() const { return file_size_; }

  /// Data-block cache hits/misses observed through this table (feeds the
  /// per-level hit rates in DB::Stats).
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }

 private:
  friend class TableIterator;

  struct IndexEntry {
    Slice last_key;  // points into the pinned index block
    uint64_t offset;
    uint32_t size;
  };

  Table() = default;

  Status ReadBlock(uint64_t offset, uint32_t size,
                   BlockCache::BlockHandle* block, bool fill_cache);
  /// Index of the first block whose last_key >= key, or -1 if past the end.
  int FindBlock(const Slice& key) const;

  Options options_;
  std::unique_ptr<RandomAccessFile> file_;
  uint64_t file_number_ = 0;
  uint64_t file_size_ = 0;
  BlockCache* cache_ = nullptr;
  /// Lifetime pins on the index / bloom-filter blocks. Pinned entries are
  /// charged to the cache but never evicted; EvictFile only unlinks them,
  /// the bytes stay valid until the Table goes away.
  BlockCache::BlockHandle index_block_;
  BlockCache::BlockHandle filter_block_;
  std::vector<IndexEntry> index_;
  Slice filter_;  // empty when the table has no filter
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
};

/// Parses the entries of one data block; used by Table::Get and iterators.
class BlockParser {
 public:
  explicit BlockParser(Slice block) : input_(block) {}

  /// Advances to the next entry; returns false at end or on corruption.
  bool Next();

  Slice key() const { return key_; }
  Slice value() const { return value_; }
  uint64_t seq() const { return seq_; }
  bool tombstone() const { return tombstone_; }
  bool corrupt() const { return corrupt_; }

 private:
  Slice input_;
  Slice key_;
  Slice value_;
  uint64_t seq_ = 0;
  bool tombstone_ = false;
  bool corrupt_ = false;
};

}  // namespace apmbench::lsm

#endif  // APMBENCH_LSM_SSTABLE_H_
