#include "lsm/db.h"

#include <algorithm>
#include <cinttypes>

#include "common/coding.h"
#include "common/logging.h"

namespace apmbench::lsm {

namespace {

constexpr uint8_t kWalPut = 1;
constexpr uint8_t kWalDelete = 2;
constexpr uint8_t kWalBatch = 3;

void EncodeWalRecord(std::string* dst, uint64_t seq, uint8_t type,
                     const Slice& key, const Slice& value) {
  PutFixed64(dst, seq);
  dst->push_back(static_cast<char>(type));
  PutLengthPrefixedSlice(dst, key);
  PutLengthPrefixedSlice(dst, value);
}

bool DecodeWalRecord(Slice input, uint64_t* seq, uint8_t* type, Slice* key,
                     Slice* value) {
  if (!GetFixed64(&input, seq) || input.empty()) return false;
  *type = static_cast<uint8_t>(input[0]);
  input.RemovePrefix(1);
  return GetLengthPrefixedSlice(&input, key) &&
         GetLengthPrefixedSlice(&input, value);
}

}  // namespace

void WriteBatch::Put(const Slice& key, const Slice& value) {
  rep_.push_back(static_cast<char>(kWalPut));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
  count_++;
}

void WriteBatch::Delete(const Slice& key) {
  rep_.push_back(static_cast<char>(kWalDelete));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, Slice());
  count_++;
}

DB::DB(const Options& options) : options_(options) {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
  options_.env = env_;
  cache_ = std::make_unique<BlockCache>(options_.block_cache_bytes,
                                        options_.block_cache_shard_bits);
  versions_ = std::make_unique<VersionSet>(options_, env_);
  mem_ = std::make_shared<MemTable>();
}

Status DB::Open(const Options& options, std::unique_ptr<DB>* db) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("Options::dir must be set");
  }
  std::unique_ptr<DB> impl(new DB(options));
  APM_RETURN_IF_ERROR(impl->OpenImpl());
  *db = std::move(impl);
  return Status::OK();
}

std::string DB::TablePath(uint64_t number) const {
  return options_.dir + "/" + std::to_string(number) + ".sst";
}

std::string DB::WalPath(uint64_t number) const {
  return options_.dir + "/wal-" + std::to_string(number) + ".log";
}

Status DB::OpenTable(const FileMeta& meta) {
  std::unique_ptr<Table> table;
  APM_RETURN_IF_ERROR(Table::Open(options_, env_, TablePath(meta.number),
                                  meta.number, cache_.get(), &table));
  tables_[meta.number] = std::move(table);
  return Status::OK();
}

Status DB::OpenImpl() {
  APM_RETURN_IF_ERROR(env_->CreateDirIfMissing(options_.dir));
  bool manifest_found = false;
  APM_RETURN_IF_ERROR(versions_->Recover(&manifest_found));
  if (!manifest_found) {
    APM_RETURN_IF_ERROR(versions_->Persist());
  }
  for (int level = 0; level < versions_->NumLevels(); level++) {
    for (const auto& meta : versions_->files(level)) {
      APM_RETURN_IF_ERROR(OpenTable(meta));
    }
  }
  APM_RETURN_IF_ERROR(ReplayWals());

  // Start the fresh WAL for the live memtable. ReplayWals allocated
  // wal_number_ above every WAL it found on disk.
  std::unique_ptr<WritableFile> wal_file;
  APM_RETURN_IF_ERROR(env_->NewWritableFile(WalPath(wal_number_), &wal_file));
  if (options_.sync_writes) {
    // The segment's directory entry must be durable before writes are
    // acknowledged into it.
    APM_RETURN_IF_ERROR(env_->SyncDir(options_.dir));
  }
  wal_ = std::make_unique<LogWriter>(std::move(wal_file));

  // Everything recovered so far is fully applied; publish the initial
  // reader view before any thread can race us.
  applied_seq_.store(versions_->last_seq(), std::memory_order_release);
  RefreshViewLocked();

  bg_thread_ = std::thread(&DB::BackgroundThread, this);
  return Status::OK();
}

void DB::RefreshViewLocked() {
  auto view = std::make_shared<ReadView>();
  view->mem = mem_;
  view->imm = imm_;
  view->tables.reserve(tables_.size());
  for (const auto& [number, table] : tables_) {
    view->tables.push_back(table);
  }
  std::lock_guard<std::mutex> view_lock(view_mu_);
  view_ = std::move(view);
}

std::shared_ptr<const DB::ReadView> DB::CurrentView() const {
  std::lock_guard<std::mutex> view_lock(view_mu_);
  return view_;
}

Status DB::ReplayWals() {
  std::vector<std::string> children;
  APM_RETURN_IF_ERROR(env_->GetChildren(options_.dir, &children));
  std::vector<uint64_t> wal_numbers;
  for (const auto& name : children) {
    if (name.rfind("wal-", 0) == 0 && name.size() > 8 &&
        name.substr(name.size() - 4) == ".log") {
      uint64_t number =
          strtoull(name.substr(4, name.size() - 8).c_str(), nullptr, 10);
      wal_numbers.push_back(number);
    }
  }
  std::sort(wal_numbers.begin(), wal_numbers.end());
  for (uint64_t number : wal_numbers) {
    versions_->BumpFileNumber(number);
  }
  // The WAL that will be live after recovery; numbered above every WAL on
  // disk so the flush edit below can mark all of them as flushed.
  wal_number_ = versions_->NewFileNumber();

  uint64_t max_seq = versions_->last_seq();
  wal_dropped_bytes_ = 0;
  wal_replayed_records_ = 0;
  for (uint64_t number : wal_numbers) {
    if (number < versions_->log_number()) {
      // The manifest records every entry of this WAL as contained in
      // SSTables: it is a leftover of a crash between LogAndApply and
      // RemoveFile. Replaying it would re-apply flushed entries and could
      // resurrect keys whose tombstones a full compaction has dropped.
      APM_LOG_INFO("lsm: skipping stale WAL %s (log_number %" PRIu64 ")",
                   WalPath(number).c_str(), versions_->log_number());
      continue;
    }
    std::unique_ptr<LogReader> reader;
    APM_RETURN_IF_ERROR(LogReader::Open(env_, WalPath(number), &reader));
    std::string payload;
    while (reader->ReadRecord(&payload)) {
      uint64_t seq;
      uint8_t type;
      Slice key, value;
      if (!DecodeWalRecord(Slice(payload), &seq, &type, &key, &value)) {
        // The frame's checksum matched but the payload is not a WAL
        // record: this is damage, not an interrupted append.
        return Status::Corruption("undecodable WAL record in " +
                                  WalPath(number));
      }
      wal_replayed_records_++;
      if (type == kWalPut) {
        mem_->Put(key, value, seq);
      } else if (type == kWalDelete) {
        mem_->Delete(key, seq);
      } else if (type == kWalBatch) {
        // `value` holds the batch body; ops get seq, seq+1, ...
        Slice ops = value;
        uint64_t op_seq = seq;
        while (!ops.empty()) {
          uint8_t op_type = static_cast<uint8_t>(ops[0]);
          ops.RemovePrefix(1);
          Slice op_key, op_value;
          if (!GetLengthPrefixedSlice(&ops, &op_key) ||
              !GetLengthPrefixedSlice(&ops, &op_value)) {
            break;
          }
          if (op_type == kWalPut) {
            mem_->Put(op_key, op_value, op_seq);
          } else if (op_type == kWalDelete) {
            mem_->Delete(op_key, op_seq);
          }
          op_seq++;
        }
        seq = op_seq > seq ? op_seq - 1 : seq;
      }
      max_seq = std::max(max_seq, seq);
    }
    // Distinguish how the log ended: a torn tail from an interrupted
    // append is expected after power loss, but mid-log damage means
    // acknowledged records after the damage are unrecoverable.
    APM_RETURN_IF_ERROR(reader->status());
    if (reader->DroppedBytes() > 0) {
      APM_LOG_WARN("lsm: dropped %" PRIu64 " torn-tail bytes from %s",
                   reader->DroppedBytes(), WalPath(number).c_str());
      wal_dropped_bytes_ += reader->DroppedBytes();
    }
  }
  versions_->set_last_seq(max_seq);

  // Persist replayed data so the old WAL files can be removed. The
  // memtable is multi-version (one entry per write, not per key), while
  // SSTables must hold one entry per key — dedup keeps the newest version
  // and preserves tombstones so they still shadow older tables.
  if (mem_->EntryCount() > 0) {
    auto iter = NewDedupIterator(mem_->NewIterator(),
                                 /*skip_tombstones=*/false);
    iter->SeekToFirst();
    std::vector<FileMeta> outputs;
    std::vector<uint64_t> numbers;
    APM_RETURN_IF_ERROR(WriteTables(iter.get(), /*single_output=*/true,
                                    &outputs, &numbers));
    VersionEdit edit;
    for (const auto& meta : outputs) {
      edit.added.push_back({0, meta});
      APM_RETURN_IF_ERROR(OpenTable(meta));
    }
    // Every replayed WAL is numbered below the post-recovery live WAL;
    // marking them flushed keeps a crash before the removals below from
    // re-applying them on the next recovery.
    edit.has_log_number = true;
    edit.log_number = wal_number_;
    APM_RETURN_IF_ERROR(versions_->LogAndApply(edit));
    mem_ = std::make_shared<MemTable>();
    num_flushes_++;
  }
  for (uint64_t number : wal_numbers) {
    env_->RemoveFile(WalPath(number));
  }
  return Status::OK();
}

Status DB::Close() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return close_status_;
    closed_ = true;
    // Drain in-flight write groups: a leader may be appending to the WAL
    // outside mu_, and the WAL is synced/closed below.
    while (!writers_.empty()) cv_.wait(lock);
    // Drain any pending flush first: the immutable memtable's WAL was
    // closed without a sync at rotation, so until the flush lands in a
    // synced SSTable those acknowledged writes are only in page cache.
    while (imm_ != nullptr && bg_error_.ok()) cv_.wait(lock);
    shutting_down_ = true;
    cv_.notify_all();
  }
  if (bg_thread_.joinable()) bg_thread_.join();
  Status s;
  if (wal_ != nullptr) {
    // Make acknowledged records durable before closing: with
    // sync_writes=false they are otherwise only in the OS page cache, and
    // a clean close must never lose acknowledged writes.
    s = wal_->Sync();
    Status close_status = wal_->Close();
    if (s.ok()) s = close_status;
    wal_.reset();
  }
  std::lock_guard<std::mutex> lock(mu_);
  close_status_ = s;
  return s;
}

DB::~DB() {
  Status s = Close();
  if (!s.ok()) {
    APM_LOG_WARN("lsm: WAL sync/close failed at shutdown: %s",
                 s.ToString().c_str());
  }
}

Status DB::MakeRoomForWrite(std::unique_lock<std::mutex>* lock) {
  // Once a WAL or flush failure is recorded the engine refuses writes:
  // continuing could acknowledge records that recovery cannot honor.
  if (!bg_error_.ok()) return bg_error_;
  while (mem_->ApproximateBytes() >= options_.memtable_bytes) {
    if (!bg_error_.ok()) return bg_error_;
    if (imm_ != nullptr) {
      // Backpressure: the previous memtable is still being flushed.
      cv_.wait(*lock);
      continue;
    }
    // Rotate memtable and WAL.
    uint64_t new_wal_number = versions_->NewFileNumber();
    std::unique_ptr<WritableFile> wal_file;
    Status s = env_->NewWritableFile(WalPath(new_wal_number), &wal_file);
    if (s.ok() && options_.sync_writes) {
      s = env_->SyncDir(options_.dir);
    }
    if (!s.ok()) {
      // A failed rotation leaves half-rotated state (a fresh file number,
      // possibly a created-but-unusable segment); letting the next writer
      // retry against it risks interleaving two generations of the log.
      // Fence exactly like the wal_->Close() failure below.
      if (bg_error_.ok()) bg_error_ = s;
      return s;
    }
    Status close_status = wal_->Close();
    if (!close_status.ok()) {
      // The rotating WAL holds acknowledged records; if its tail never
      // reached the OS, a crash before the memtable flush lands would
      // lose them. Fail the write and stop accepting new ones.
      bg_error_ = close_status;
      return close_status;
    }
    wal_ = std::make_unique<LogWriter>(std::move(wal_file));
    imm_ = std::move(mem_);
    imm_wal_number_ = wal_number_;
    wal_number_ = new_wal_number;
    mem_ = std::make_shared<MemTable>();
    RefreshViewLocked();
    cv_.notify_all();
  }
  return Status::OK();
}

Status DB::Put(const Slice& key, const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(batch);
}

Status DB::Delete(const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(batch);
}

Status DB::ValidateBatch(const WriteBatch& batch) {
  Slice ops(batch.rep_);
  size_t count = 0;
  while (!ops.empty()) {
    uint8_t op_type = static_cast<uint8_t>(ops[0]);
    ops.RemovePrefix(1);
    Slice key, value;
    if ((op_type != kWalPut && op_type != kWalDelete) ||
        !GetLengthPrefixedSlice(&ops, &key) ||
        !GetLengthPrefixedSlice(&ops, &value)) {
      return Status::Corruption("malformed write batch");
    }
    count++;
  }
  if (count != batch.Count()) {
    return Status::Corruption("write batch count disagrees with contents");
  }
  return Status::OK();
}

void DB::ApplyBatchRep(MemTable* mem, const Slice& rep, uint64_t base_seq) {
  Slice ops = rep;
  uint64_t seq = base_seq;
  while (!ops.empty()) {
    uint8_t op_type = static_cast<uint8_t>(ops[0]);
    ops.RemovePrefix(1);
    Slice key, value;
    if (!GetLengthPrefixedSlice(&ops, &key) ||
        !GetLengthPrefixedSlice(&ops, &value)) {
      // Unreachable: every rep was validated before entering the queue.
      break;
    }
    if (op_type == kWalPut) {
      mem->Put(key, value, seq);
    } else {
      mem->Delete(key, seq);
    }
    seq++;
  }
}

Status DB::Write(const WriteBatch& batch) {
  if (batch.Count() == 0) return Status::OK();
  // Reject malformed batches before a sequence number is consumed or a
  // WAL byte written: a bad rep_ used to be logged, partially applied,
  // and replayed on recovery.
  APM_RETURN_IF_ERROR(ValidateBatch(batch));

  Writer w(&batch);
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return Status::IOError("db closed");
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) {
    w.cv.wait(lock);
  }
  if (w.done) return w.status;  // a leader committed this batch for us

  // This thread is the leader: it stays at the front of the queue until
  // it pops its whole group below, so no other thread touches the WAL or
  // the memtable meanwhile.
  Status s = MakeRoomForWrite(&lock);
  Writer* last_writer = &w;
  if (s.ok()) {
    // Merge every queued batch (bounded, to keep follower latency sane)
    // into one rep covering contiguous sequence numbers.
    constexpr size_t kMaxGroupBytes = 1 << 20;
    const uint64_t base_seq = versions_->last_seq() + 1;
    std::string group_rep;
    size_t group_count = 0;
    size_t group_writers = 0;
    for (Writer* candidate : writers_) {
      if (candidate != &w &&
          group_rep.size() + candidate->batch->rep_.size() > kMaxGroupBytes) {
        break;
      }
      group_rep.append(candidate->batch->rep_);
      group_count += candidate->batch->Count();
      group_writers++;
      last_writer = candidate;
    }
    versions_->set_last_seq(base_seq + group_count - 1);
    std::string record;
    EncodeWalRecord(&record, base_seq, kWalBatch, Slice(), Slice(group_rep));
    MemTable* mem = mem_.get();
    LogWriter* wal = wal_.get();

    // The expensive part — one WAL append (and at most one fsync) for the
    // whole group, plus the memtable inserts — runs outside mu_. Readers
    // are already lock-free; this also unblocks Flush/GetStats/background
    // work for the duration of the I/O.
    lock.unlock();
    s = wal->AddRecord(record, options_.sync_writes);
    if (s.ok()) {
      ApplyBatchRep(mem, Slice(group_rep), base_seq);
      // Publish the group to readers only once every entry is in: readers
      // cap their memtable visibility at applied_seq_, which keeps both
      // batches and whole groups atomic under concurrent Get/Scan.
      applied_seq_.store(base_seq + group_count - 1,
                         std::memory_order_release);
    }
    lock.lock();
    if (!s.ok() && bg_error_.ok()) {
      // The WAL may now end in a partial frame; further appends would
      // write beyond it and turn the next recovery into mid-log
      // corruption.
      bg_error_ = s;
    }
    write_groups_++;
    grouped_writes_ += group_writers;
  }

  // Pop the group (leader included), report the shared status, promote
  // the next leader.
  for (;;) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != &w) {
      ready->status = s;
      ready->done = true;
      ready->cv.notify_one();
    }
    if (ready == last_writer) break;
  }
  if (!writers_.empty()) {
    writers_.front()->cv.notify_one();
  } else {
    cv_.notify_all();  // Flush()/Close() may be draining the queue
  }
  return s;
}

Status DB::Get(const ReadOptions& read_options, const Slice& key,
               std::string* value) {
  // Never touches mu_: the view pins every structure the read needs, and
  // applied_seq_ (loaded after the view, so it covers everything the view
  // contains) hides half-applied write groups in the live memtable.
  std::shared_ptr<const ReadView> view = CurrentView();
  const uint64_t seq_limit = applied_seq_.load(std::memory_order_acquire);

  // The live and immutable memtables hold the newest entries; a hit
  // there is authoritative.
  MemTable::GetResult r = view->mem->Get(key, value, nullptr, seq_limit);
  if (r == MemTable::GetResult::kFound) return Status::OK();
  if (r == MemTable::GetResult::kDeleted) return Status::NotFound();
  if (view->imm != nullptr) {
    // The immutable memtable is fully applied by construction (rotation
    // only happens between write groups), so no seq cap is needed.
    r = view->imm->Get(key, value);
    if (r == MemTable::GetResult::kFound) return Status::OK();
    if (r == MemTable::GetResult::kDeleted) return Status::NotFound();
  }
  const std::vector<std::shared_ptr<Table>>& candidates = view->tables;

  // Search every table that may contain the key and keep the entry with
  // the highest sequence number: with size-tiered compaction, no total
  // order exists between tables (see Iterator::seq()).
  uint64_t best_seq = 0;
  bool found = false;
  bool deleted = false;
  std::string candidate_value;
  for (const auto& table : candidates) {
    Table::GetResult result;
    uint64_t seq = 0;
    std::string v;
    APM_RETURN_IF_ERROR(table->Get(read_options, key, &result, &v, &seq));
    if (result == Table::GetResult::kAbsent) continue;
    if (!found || seq > best_seq) {
      found = true;
      best_seq = seq;
      deleted = (result == Table::GetResult::kDeleted);
      candidate_value = std::move(v);
    }
  }
  if (!found || deleted) return Status::NotFound();
  *value = std::move(candidate_value);
  return Status::OK();
}

Status DB::Scan(const ReadOptions& read_options, const Slice& start,
                int count,
                std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  // No mu_: the skip list supports concurrent traversal while the
  // group-commit leader inserts, and the seq cap gives the whole scan one
  // consistent point-in-time view — so scans no longer block writers.
  std::shared_ptr<const ReadView> view = CurrentView();
  const uint64_t seq_limit = applied_seq_.load(std::memory_order_acquire);
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(view->mem->NewIterator(seq_limit));
  if (view->imm != nullptr) children.push_back(view->imm->NewIterator());
  for (const auto& table : view->tables) {
    children.push_back(table->NewIterator(read_options));
  }
  auto iter = NewDedupIterator(NewMergingIterator(std::move(children)),
                               /*skip_tombstones=*/true);
  iter->Seek(start);
  while (iter->Valid() && static_cast<int>(out->size()) < count) {
    out->emplace_back(iter->key().ToString(), iter->value().ToString());
    iter->Next();
  }
  return iter->status();
}

namespace {

/// Ordered in-memory entries, used for the frozen copy of the live
/// memtable inside snapshot iterators.
class VectorIterator final : public Iterator {
 public:
  struct Entry {
    std::string key;
    std::string value;
    uint64_t seq;
    bool tombstone;
  };

  explicit VectorIterator(std::vector<Entry> entries)
      : entries_(std::move(entries)) {}

  bool Valid() const override {
    return index_ >= 0 && index_ < static_cast<int>(entries_.size());
  }
  void SeekToFirst() override { index_ = entries_.empty() ? -1 : 0; }
  void Seek(const Slice& target) override {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), target,
        [](const Entry& e, const Slice& t) { return Slice(e.key) < t; });
    index_ = it == entries_.end() ? static_cast<int>(entries_.size())
                                  : static_cast<int>(it - entries_.begin());
  }
  void Next() override { index_++; }
  Slice key() const override { return Slice(entries_[index_].key); }
  Slice value() const override { return Slice(entries_[index_].value); }
  bool IsTombstone() const override { return entries_[index_].tombstone; }
  uint64_t seq() const override { return entries_[index_].seq; }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<Entry> entries_;
  int index_ = -1;
};

/// Owns the pinned resources of a snapshot and forwards to the merged
/// view over them.
class SnapshotIterator final : public Iterator {
 public:
  SnapshotIterator(std::unique_ptr<Iterator> merged,
                   std::shared_ptr<MemTable> imm,
                   std::vector<std::shared_ptr<Table>> tables)
      : merged_(std::move(merged)),
        imm_(std::move(imm)),
        tables_(std::move(tables)) {}

  bool Valid() const override { return merged_->Valid(); }
  void SeekToFirst() override { merged_->SeekToFirst(); }
  void Seek(const Slice& target) override { merged_->Seek(target); }
  void Next() override { merged_->Next(); }
  Slice key() const override { return merged_->key(); }
  Slice value() const override { return merged_->value(); }
  bool IsTombstone() const override { return merged_->IsTombstone(); }
  uint64_t seq() const override { return merged_->seq(); }
  Status status() const override { return merged_->status(); }

 private:
  std::unique_ptr<Iterator> merged_;
  std::shared_ptr<MemTable> imm_;
  std::vector<std::shared_ptr<Table>> tables_;
};

}  // namespace

std::unique_ptr<Iterator> DB::NewSnapshotIterator(
    const ReadOptions& read_options) {
  std::vector<std::unique_ptr<Iterator>> children;
  std::shared_ptr<MemTable> imm;
  std::vector<std::shared_ptr<Table>> tables;
  {
    // Like Get/Scan: the view pins the structures and the seq cap fixes
    // the point in time, without mu_.
    std::shared_ptr<const ReadView> view = CurrentView();
    const uint64_t seq_limit = applied_seq_.load(std::memory_order_acquire);
    // Freeze the live memtable by copying it (bounded by memtable_bytes).
    // Entries arrive (key asc, seq desc), so keeping only the first
    // version of each key collapses the multi-version history.
    std::vector<VectorIterator::Entry> frozen;
    frozen.reserve(view->mem->EntryCount());
    auto mem_iter = view->mem->NewIterator(seq_limit);
    for (mem_iter->SeekToFirst(); mem_iter->Valid(); mem_iter->Next()) {
      if (!frozen.empty() && Slice(frozen.back().key) == mem_iter->key()) {
        continue;  // older version of the key just captured
      }
      frozen.push_back(VectorIterator::Entry{
          mem_iter->key().ToString(), mem_iter->value().ToString(),
          mem_iter->seq(), mem_iter->IsTombstone()});
    }
    children.push_back(std::make_unique<VectorIterator>(std::move(frozen)));
    if (view->imm != nullptr) {
      imm = view->imm;
      children.push_back(imm->NewIterator());
    }
    for (const auto& table : view->tables) {
      tables.push_back(table);
      children.push_back(table->NewIterator(read_options));
    }
  }
  auto merged = NewDedupIterator(NewMergingIterator(std::move(children)),
                                 /*skip_tombstones=*/true);
  return std::make_unique<SnapshotIterator>(std::move(merged), std::move(imm),
                                            std::move(tables));
}

Status DB::WriteTables(Iterator* iter, bool single_output,
                       std::vector<FileMeta>* outputs,
                       std::vector<uint64_t>* numbers) {
  std::unique_ptr<TableBuilder> builder;
  uint64_t current_number = 0;
  auto open_builder = [&]() -> Status {
    current_number = versions_->NewFileNumber();
    builder = std::make_unique<TableBuilder>(options_, env_,
                                             TablePath(current_number));
    return builder->Open();
  };
  auto finish_builder = [&]() -> Status {
    if (builder == nullptr || builder->NumEntries() == 0) {
      if (builder != nullptr) builder->Abandon();
      builder.reset();
      return Status::OK();
    }
    APM_RETURN_IF_ERROR(builder->Finish());
    FileMeta meta;
    meta.number = current_number;
    meta.file_size = builder->FileSize();
    meta.num_entries = builder->NumEntries();
    meta.smallest = builder->smallest_key();
    meta.largest = builder->largest_key();
    outputs->push_back(std::move(meta));
    numbers->push_back(current_number);
    compaction_bytes_written_ += builder->FileSize();
    builder.reset();
    return Status::OK();
  };

  const uint64_t max_output = options_.memtable_bytes * 2;
  for (; iter->Valid(); iter->Next()) {
    if (builder == nullptr) {
      APM_RETURN_IF_ERROR(open_builder());
    }
    APM_RETURN_IF_ERROR(builder->Add(iter->key(), iter->value(), iter->seq(),
                                     iter->IsTombstone()));
    if (!single_output && builder->CurrentSizeEstimate() >= max_output) {
      APM_RETURN_IF_ERROR(finish_builder());
    }
  }
  APM_RETURN_IF_ERROR(iter->status());
  return finish_builder();
}

void DB::BackgroundThread() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutting_down_) {
    CompactionJob job;
    if (imm_ != nullptr) {
      bg_active_ = true;
      lock.unlock();
      BackgroundFlush();
      lock.lock();
      bg_active_ = false;
      cv_.notify_all();
      continue;
    }
    if (bg_error_.ok() && PickCompaction(&job)) {
      bg_active_ = true;
      lock.unlock();
      BackgroundCompact(job);
      lock.lock();
      bg_active_ = false;
      manual_compaction_ = false;
      cv_.notify_all();
      continue;
    }
    cv_.wait(lock);
  }
}

void DB::BackgroundFlush() {
  // imm_ is immutable; safe to read without the mutex. Dedup collapses
  // the multi-version memtable into one entry per key (tombstones kept)
  // so the SSTable invariant of unique, ordered keys holds.
  auto iter = NewDedupIterator(imm_->NewIterator(),
                               /*skip_tombstones=*/false);
  iter->SeekToFirst();
  std::vector<FileMeta> outputs;
  std::vector<uint64_t> numbers;
  // File numbers come from an atomic counter, so the flush I/O can run
  // without blocking foreground operations.
  Status s = WriteTables(iter.get(), /*single_output=*/true, &outputs,
                         &numbers);
  std::lock_guard<std::mutex> lock(mu_);
  if (!s.ok()) {
    bg_error_ = s;
    return;
  }
  VersionEdit edit;
  for (const auto& meta : outputs) {
    edit.added.push_back({0, meta});
    Status open_status = OpenTable(meta);
    if (!open_status.ok()) {
      bg_error_ = open_status;
      return;
    }
  }
  edit.has_log_number = true;
  edit.log_number = wal_number_;
  s = versions_->LogAndApply(edit);
  if (!s.ok()) {
    bg_error_ = s;
    return;
  }
  env_->RemoveFile(WalPath(imm_wal_number_));
  imm_.reset();
  num_flushes_++;
  RefreshViewLocked();
}

uint64_t DB::MaxBytesForLevel(int level) const {
  uint64_t bytes = options_.level1_max_bytes;
  for (int i = 1; i < level; i++) bytes *= 10;
  return bytes;
}

bool DB::PickCompaction(CompactionJob* job) {
  // Called with mu_ held.
  if (manual_compaction_) {
    job->inputs.clear();
    for (int level = 0; level < versions_->NumLevels(); level++) {
      for (const auto& f : versions_->files(level)) job->inputs.push_back(f);
    }
    if (job->inputs.empty()) {
      // Nothing to do; release the waiter in CompactAll.
      manual_compaction_ = false;
      cv_.notify_all();
      return false;
    }
    job->output_level =
        options_.compaction_style == CompactionStyle::kLeveled
            ? versions_->NumLevels() - 1
            : 0;
    job->drop_tombstones = true;
    job->single_output = true;
    return true;
  }

  if (options_.compaction_style == CompactionStyle::kSizeTiered) {
    // Bucket level-0 files by similar size (Cassandra STCS).
    std::vector<FileMeta> files = versions_->files(0);
    if (static_cast<int>(files.size()) < options_.size_tiered_min_files) {
      return false;
    }
    std::sort(files.begin(), files.end(),
              [](const FileMeta& a, const FileMeta& b) {
                return a.file_size < b.file_size;
              });
    std::vector<FileMeta> bucket;
    double bucket_avg = 0;
    for (const auto& f : files) {
      double size = static_cast<double>(f.file_size);
      if (bucket.empty() ||
          (size >= bucket_avg * options_.size_tiered_bucket_low &&
           size <= bucket_avg * options_.size_tiered_bucket_high)) {
        double total = bucket_avg * static_cast<double>(bucket.size()) + size;
        bucket.push_back(f);
        bucket_avg = total / static_cast<double>(bucket.size());
      } else {
        if (static_cast<int>(bucket.size()) >= options_.size_tiered_min_files) {
          break;  // compact the smallest eligible bucket first
        }
        bucket.clear();
        bucket.push_back(f);
        bucket_avg = size;
      }
      if (bucket.size() >= 32) break;  // cap one compaction's width
    }
    if (static_cast<int>(bucket.size()) < options_.size_tiered_min_files) {
      return false;
    }
    job->inputs = std::move(bucket);
    job->output_level = 0;
    job->drop_tombstones = job->inputs.size() == versions_->TotalFiles();
    job->single_output = true;
    return true;
  }

  // Leveled compaction.
  if (versions_->NumFiles(0) >= options_.level0_compaction_trigger) {
    job->inputs = versions_->files(0);
    // Level-0 files overlap; take all of level 1 that intersects any of
    // them. Level-1 ranges are disjoint, so a linear filter suffices.
    std::string smallest, largest;
    for (const auto& f : job->inputs) {
      if (smallest.empty() || Slice(f.smallest).Compare(smallest) < 0) {
        smallest = f.smallest;
      }
      if (largest.empty() || Slice(f.largest).Compare(largest) > 0) {
        largest = f.largest;
      }
    }
    for (const auto& f : versions_->files(1)) {
      if (Slice(f.largest).Compare(smallest) >= 0 &&
          Slice(f.smallest).Compare(largest) <= 0) {
        job->inputs.push_back(f);
      }
    }
    job->output_level = 1;
    job->drop_tombstones = job->inputs.size() == versions_->TotalFiles();
    job->single_output = false;
    return true;
  }
  for (int level = 1; level < versions_->NumLevels() - 1; level++) {
    if (versions_->LevelBytes(level) <= MaxBytesForLevel(level)) continue;
    const auto& files = versions_->files(level);
    if (files.empty()) continue;
    const FileMeta& pick = files.front();
    job->inputs.push_back(pick);
    for (const auto& f : versions_->files(level + 1)) {
      if (Slice(f.largest).Compare(pick.smallest) >= 0 &&
          Slice(f.smallest).Compare(pick.largest) <= 0) {
        job->inputs.push_back(f);
      }
    }
    job->output_level = level + 1;
    job->drop_tombstones = job->inputs.size() == versions_->TotalFiles();
    job->single_output = false;
    return true;
  }
  return false;
}

void DB::BackgroundCompact(const CompactionJob& job) {
  // Snapshot the input tables (immutable; no mutex needed to read them,
  // but fetching the shared_ptrs requires it).
  std::vector<std::shared_ptr<Table>> inputs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& meta : job.inputs) {
      auto it = tables_.find(meta.number);
      if (it == tables_.end()) {
        bg_error_ = Status::Corruption("compaction input table missing");
        return;
      }
      inputs.push_back(it->second);
      compaction_bytes_read_ += meta.file_size;
    }
  }

  ReadOptions read_options;
  read_options.fill_cache = false;
  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(inputs.size());
  for (const auto& table : inputs) {
    children.push_back(table->NewIterator(read_options));
  }
  auto merged = NewDedupIterator(NewMergingIterator(std::move(children)),
                                 /*skip_tombstones=*/job.drop_tombstones);
  merged->SeekToFirst();

  std::vector<FileMeta> outputs;
  std::vector<uint64_t> numbers;
  Status s = WriteTables(merged.get(), job.single_output, &outputs, &numbers);

  std::lock_guard<std::mutex> lock(mu_);
  if (!s.ok()) {
    bg_error_ = s;
    return;
  }
  VersionEdit edit;
  for (const auto& meta : job.inputs) edit.removed.push_back(meta.number);
  for (const auto& meta : outputs) {
    edit.added.push_back({job.output_level, meta});
    Status open_status = OpenTable(meta);
    if (!open_status.ok()) {
      bg_error_ = open_status;
      return;
    }
  }
  s = versions_->LogAndApply(edit);
  if (!s.ok()) {
    bg_error_ = s;
    return;
  }
  for (const auto& meta : job.inputs) {
    tables_.erase(meta.number);
    cache_->EvictFile(meta.number);
    env_->RemoveFile(TablePath(meta.number));
  }
  num_compactions_++;
  // Readers holding the old view keep the dropped tables alive through
  // their shared_ptrs; new readers pick up the compacted set here.
  RefreshViewLocked();
}

Status DB::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  // A group leader may be applying to mem_ outside mu_; rotating under it
  // would let those inserts land in a memtable already being flushed. The
  // predicate checks the writer queue and the pending flush *together* —
  // waiting on them one at a time would let a new leader slip in while we
  // wait for imm_ to drain. (Leaders finish by popping their group under
  // mu_ and notify cv_ when the queue empties.)
  while (!writers_.empty() || imm_ != nullptr) {
    if (!bg_error_.ok()) return bg_error_;
    cv_.wait(lock);
  }
  if (mem_->EntryCount() > 0) {
    // Rotate even a partially full memtable; mu_ is held from the waits
    // above through the rotation, so no new leader can start meanwhile.
    uint64_t new_wal_number = versions_->NewFileNumber();
    std::unique_ptr<WritableFile> wal_file;
    Status rotate_status =
        env_->NewWritableFile(WalPath(new_wal_number), &wal_file);
    if (rotate_status.ok() && options_.sync_writes) {
      rotate_status = env_->SyncDir(options_.dir);
    }
    if (!rotate_status.ok()) {
      // Fence half-rotated state, same as MakeRoomForWrite.
      if (bg_error_.ok()) bg_error_ = rotate_status;
      return rotate_status;
    }
    Status close_status = wal_->Close();
    if (!close_status.ok()) {
      if (bg_error_.ok()) bg_error_ = close_status;
      return close_status;
    }
    wal_ = std::make_unique<LogWriter>(std::move(wal_file));
    imm_ = std::move(mem_);
    imm_wal_number_ = wal_number_;
    wal_number_ = new_wal_number;
    mem_ = std::make_shared<MemTable>();
    RefreshViewLocked();
    cv_.notify_all();
  }
  while (imm_ != nullptr && bg_error_.ok()) {
    cv_.wait(lock);
  }
  return bg_error_;
}

Status DB::CompactAll() {
  APM_RETURN_IF_ERROR(Flush());
  std::unique_lock<std::mutex> lock(mu_);
  manual_compaction_ = true;
  cv_.notify_all();
  while ((manual_compaction_ || bg_active_) && bg_error_.ok()) {
    cv_.wait(lock);
  }
  return bg_error_;
}

Status DB::DiskUsage(uint64_t* bytes) {
  return env_->GetDirectorySize(options_.dir, bytes);
}

Status DB::VerifyIntegrity() {
  // Snapshot the file set and table handles.
  std::vector<std::pair<FileMeta, std::shared_ptr<Table>>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int level = 0; level < versions_->NumLevels(); level++) {
      for (const FileMeta& meta : versions_->files(level)) {
        auto it = tables_.find(meta.number);
        if (it == tables_.end()) {
          return Status::Corruption("manifest lists unopened table " +
                                    std::to_string(meta.number));
        }
        snapshot.emplace_back(meta, it->second);
      }
    }
  }
  for (const auto& [meta, table] : snapshot) {
    ReadOptions read_options;
    read_options.fill_cache = false;
    auto iter = table->NewIterator(read_options);
    uint64_t entries = 0;
    std::string prev_key;
    std::string first_key, last_key;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      std::string key = iter->key().ToString();
      if (entries == 0) {
        first_key = key;
      } else if (key <= prev_key) {
        return Status::Corruption("table " + std::to_string(meta.number) +
                                  " keys out of order");
      }
      prev_key = key;
      last_key = key;
      entries++;
    }
    APM_RETURN_IF_ERROR(iter->status());
    if (entries != meta.num_entries) {
      return Status::Corruption(
          "table " + std::to_string(meta.number) + " has " +
          std::to_string(entries) + " entries, manifest says " +
          std::to_string(meta.num_entries));
    }
    if (entries > 0 &&
        (first_key != meta.smallest || last_key != meta.largest)) {
      return Status::Corruption("table " + std::to_string(meta.number) +
                                " key range disagrees with manifest");
    }
  }
  return Status::OK();
}

DB::Stats DB::GetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.num_flushes = num_flushes_;
  stats.num_compactions = num_compactions_;
  stats.compaction_bytes_read = compaction_bytes_read_;
  stats.compaction_bytes_written = compaction_bytes_written_;
  stats.cache_hits = cache_->hits();
  stats.cache_misses = cache_->misses();
  stats.cache_charge = cache_->charge();
  stats.cache_evictions = cache_->evictions();
  stats.memtable_bytes = mem_->ApproximateBytes();
  stats.wal_dropped_bytes = wal_dropped_bytes_;
  stats.wal_replayed_records = wal_replayed_records_;
  stats.write_groups = write_groups_;
  stats.grouped_writes = grouped_writes_;
  stats.pending_writers = writers_.size();
  for (int level = 0; level < versions_->NumLevels(); level++) {
    stats.files_per_level.push_back(versions_->NumFiles(level));
    stats.bytes_per_level.push_back(versions_->LevelBytes(level));
    uint64_t hits = 0, misses = 0;
    for (const auto& meta : versions_->files(level)) {
      auto it = tables_.find(meta.number);
      if (it == tables_.end()) continue;
      hits += it->second->cache_hits();
      misses += it->second->cache_misses();
    }
    stats.cache_hits_per_level.push_back(hits);
    stats.cache_misses_per_level.push_back(misses);
  }
  return stats;
}

bool DB::GetProperty(const Slice& property, std::string* value) {
  value->clear();
  if (property == Slice("lsm.cache-charge")) {
    *value = std::to_string(cache_->charge());
    return true;
  }
  if (property == Slice("lsm.cache-stats")) {
    Stats stats = GetStats();
    char line[160];
    snprintf(line, sizeof(line),
             "block cache: %d shards, charge %llu / capacity %llu, "
             "hits %llu, misses %llu, evictions %llu\n",
             cache_->num_shards(),
             static_cast<unsigned long long>(stats.cache_charge),
             static_cast<unsigned long long>(cache_->capacity()),
             static_cast<unsigned long long>(stats.cache_hits),
             static_cast<unsigned long long>(stats.cache_misses),
             static_cast<unsigned long long>(stats.cache_evictions));
    value->append(line);
    for (size_t level = 0; level < stats.cache_hits_per_level.size();
         level++) {
      const uint64_t hits = stats.cache_hits_per_level[level];
      const uint64_t misses = stats.cache_misses_per_level[level];
      if (stats.files_per_level[level] == 0 && hits == 0 && misses == 0) {
        continue;
      }
      const uint64_t total = hits + misses;
      snprintf(line, sizeof(line),
               "L%zu: %d files, hits %llu, misses %llu, hit_rate %.3f\n",
               level, stats.files_per_level[level],
               static_cast<unsigned long long>(hits),
               static_cast<unsigned long long>(misses),
               total > 0 ? static_cast<double>(hits) / total : 0.0);
      value->append(line);
    }
    return true;
  }
  return false;
}

}  // namespace apmbench::lsm
