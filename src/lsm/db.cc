#include "lsm/db.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <thread>

#include "common/clock.h"
#include "common/coding.h"
#include "common/logging.h"

namespace apmbench::lsm {

namespace {

constexpr uint8_t kWalPut = 1;
constexpr uint8_t kWalDelete = 2;
constexpr uint8_t kWalBatch = 3;

void EncodeWalRecord(std::string* dst, uint64_t seq, uint8_t type,
                     const Slice& key, const Slice& value) {
  PutFixed64(dst, seq);
  dst->push_back(static_cast<char>(type));
  PutLengthPrefixedSlice(dst, key);
  PutLengthPrefixedSlice(dst, value);
}

bool DecodeWalRecord(Slice input, uint64_t* seq, uint8_t* type, Slice* key,
                     Slice* value) {
  if (!GetFixed64(&input, seq) || input.empty()) return false;
  *type = static_cast<uint8_t>(input[0]);
  input.RemovePrefix(1);
  return GetLengthPrefixedSlice(&input, key) &&
         GetLengthPrefixedSlice(&input, value);
}

}  // namespace

void WriteBatch::Put(const Slice& key, const Slice& value) {
  rep_.push_back(static_cast<char>(kWalPut));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
  count_++;
}

void WriteBatch::Delete(const Slice& key) {
  rep_.push_back(static_cast<char>(kWalDelete));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, Slice());
  count_++;
}

DB::DB(const Options& options) : options_(options) {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
  options_.env = env_;
  // The arena charges whole blocks up front, so a memtable must span
  // several blocks before the flush trigger can fire — otherwise a
  // memtable_bytes smaller than one block degenerates into a flush per
  // write. Each shard has its own arena and the flush trigger compares
  // the *sum*, so the divisor scales with the shard count to keep the
  // overshoot bound (one block per shard) proportional to
  // memtable_bytes. Clamp rather than reject the combination: tiny
  // write buffers are a legitimate way to force flush churn.
  //
  // The shard count itself is budget-aware first: every shard's arena
  // charges at least one 256-byte block, so the rotation quantum is
  // shards * max(256, block_bytes). Keeping >= 1KiB of budget per shard
  // bounds that quantum at memtable_bytes / 4 — without this, a 2KiB
  // write buffer split 8 ways rotates (and flushes) every few puts.
  // Halving preserves the power-of-two contract.
  while (options_.memtable_shards > 1 &&
         options_.memtable_bytes <
             static_cast<size_t>(options_.memtable_shards) * 1024) {
    options_.memtable_shards /= 2;
  }
  const size_t shard_count =
      static_cast<size_t>(std::max(1, options_.memtable_shards));
  if (options_.arena_block_bytes >
      options_.memtable_bytes / (4 * shard_count)) {
    options_.arena_block_bytes =
        std::max<size_t>(256, options_.memtable_bytes / (4 * shard_count));
  }
  cache_ = std::make_unique<BlockCache>(options_.block_cache_bytes,
                                        options_.block_cache_shard_bits);
  versions_ = std::make_unique<VersionSet>(options_, env_);
  mem_ = std::make_shared<MemTable>(options_.arena_block_bytes,
                                    options_.memtable_shards);
  rate_limiter_ = options_.rate_limiter;
  if (rate_limiter_ == nullptr && options_.rate_limit_bytes_per_sec > 0) {
    rate_limiter_ =
        std::make_shared<RateLimiter>(options_.rate_limit_bytes_per_sec);
  }
  if (options_.subcompactions > 1) {
    subcompaction_pool_ =
        std::make_unique<FanoutExecutor>(options_.subcompactions - 1);
  }
}

Status DB::Open(const Options& options, std::unique_ptr<DB>* db) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("Options::dir must be set");
  }
  if (options.format_version < kTableFormatV1 ||
      options.format_version > kMaxSupportedTableFormat) {
    return Status::InvalidArgument(
        "Options::format_version must be 1 or 2, got " +
        std::to_string(options.format_version));
  }
  // Power-of-two shard counts keep shard routing a mask of the key hash
  // and the claim bitmap one word; reject anything else loudly instead of
  // clamping, so a miswritten config cannot silently run with a different
  // concurrency shape than the operator intended.
  if (options.memtable_shards < 1 ||
      options.memtable_shards > MemTable::kMaxShards ||
      (options.memtable_shards & (options.memtable_shards - 1)) != 0) {
    return Status::InvalidArgument(
        "Options::memtable_shards must be a power of two in [1, " +
        std::to_string(MemTable::kMaxShards) + "], got " +
        std::to_string(options.memtable_shards));
  }
  std::unique_ptr<DB> impl(new DB(options));
  APM_RETURN_IF_ERROR(impl->OpenImpl());
  *db = std::move(impl);
  return Status::OK();
}

std::string DB::TablePath(uint64_t number) const {
  return options_.dir + "/" + std::to_string(number) + ".sst";
}

std::string DB::WalPath(uint64_t number) const {
  return options_.dir + "/wal-" + std::to_string(number) + ".log";
}

Status DB::OpenTable(const FileMeta& meta) {
  std::unique_ptr<Table> table;
  APM_RETURN_IF_ERROR(Table::Open(options_, env_, TablePath(meta.number),
                                  meta.number, cache_.get(), &table));
  tables_[meta.number] = std::move(table);
  return Status::OK();
}

Status DB::OpenImpl() {
  APM_RETURN_IF_ERROR(env_->CreateDirIfMissing(options_.dir));
  bool manifest_found = false;
  APM_RETURN_IF_ERROR(versions_->Recover(&manifest_found));
  if (!manifest_found) {
    APM_RETURN_IF_ERROR(versions_->Persist());
  }
  for (int level = 0; level < versions_->NumLevels(); level++) {
    for (const auto& meta : versions_->files(level)) {
      APM_RETURN_IF_ERROR(OpenTable(meta));
    }
  }
  APM_RETURN_IF_ERROR(ReplayWals());

  // Remove orphaned SSTables: a crash between table creation and the
  // manifest apply (or between a compaction and its deferred zombie
  // unlink) leaves .sst files on disk that no manifest references. Any
  // data they held is either in the manifest's tables or still in a WAL
  // that was just replayed, so deleting them is safe. Must happen before
  // background threads start creating new tables.
  {
    std::vector<std::string> children;
    APM_RETURN_IF_ERROR(env_->GetChildren(options_.dir, &children));
    for (const auto& name : children) {
      if (name.size() <= 4 || name.substr(name.size() - 4) != ".sst") {
        continue;
      }
      uint64_t number =
          strtoull(name.substr(0, name.size() - 4).c_str(), nullptr, 10);
      if (tables_.count(number) == 0) {
        APM_LOG_INFO("lsm: removing orphaned table %s", name.c_str());
        env_->RemoveFile(options_.dir + "/" + name);
      }
    }
  }

  // Start the fresh WAL for the live memtable. ReplayWals allocated
  // wal_number_ above every WAL it found on disk.
  std::unique_ptr<WritableFile> wal_file;
  APM_RETURN_IF_ERROR(env_->NewWritableFile(WalPath(wal_number_), &wal_file));
  if (options_.sync_writes) {
    // The segment's directory entry must be durable before writes are
    // acknowledged into it.
    APM_RETURN_IF_ERROR(env_->SyncDir(options_.dir));
  }
  wal_ = std::make_unique<LogWriter>(std::move(wal_file));

  // Everything recovered so far is fully applied; publish the initial
  // reader view before any thread can race us.
  applied_seq_.store(versions_->last_seq(), std::memory_order_release);
  RefreshViewLocked();

  flush_thread_ = std::thread(&DB::FlushThreadMain, this);
  const int pool = std::max(1, options_.compaction_threads);
  compaction_threads_.reserve(pool);
  for (int i = 0; i < pool; i++) {
    compaction_threads_.emplace_back(&DB::CompactionThreadMain, this);
  }
  return Status::OK();
}

void DB::RefreshViewLocked() {
  auto view = std::make_shared<ReadView>();
  view->mem = mem_;
  view->imm = imm_;
  view->tables.reserve(tables_.size());
  for (const auto& [number, table] : tables_) {
    view->tables.push_back(table);
  }
  std::lock_guard<std::mutex> view_lock(view_mu_);
  view_ = std::move(view);
}

std::shared_ptr<const DB::ReadView> DB::CurrentView() const {
  std::lock_guard<std::mutex> view_lock(view_mu_);
  return view_;
}

Status DB::ReplayWals() {
  std::vector<std::string> children;
  APM_RETURN_IF_ERROR(env_->GetChildren(options_.dir, &children));
  std::vector<uint64_t> wal_numbers;
  for (const auto& name : children) {
    if (name.rfind("wal-", 0) == 0 && name.size() > 8 &&
        name.substr(name.size() - 4) == ".log") {
      uint64_t number =
          strtoull(name.substr(4, name.size() - 8).c_str(), nullptr, 10);
      wal_numbers.push_back(number);
    }
  }
  std::sort(wal_numbers.begin(), wal_numbers.end());
  for (uint64_t number : wal_numbers) {
    versions_->BumpFileNumber(number);
  }
  // The WAL that will be live after recovery; numbered above every WAL on
  // disk so the flush edit below can mark all of them as flushed.
  wal_number_ = versions_->NewFileNumber();

  uint64_t max_seq = versions_->last_seq();
  wal_dropped_bytes_ = 0;
  wal_replayed_records_ = 0;
  for (uint64_t number : wal_numbers) {
    if (number < versions_->log_number()) {
      // The manifest records every entry of this WAL as contained in
      // SSTables: it is a leftover of a crash between LogAndApply and
      // RemoveFile. Replaying it would re-apply flushed entries and could
      // resurrect keys whose tombstones a full compaction has dropped.
      APM_LOG_INFO("lsm: skipping stale WAL %s (log_number %" PRIu64 ")",
                   WalPath(number).c_str(), versions_->log_number());
      continue;
    }
    std::unique_ptr<LogReader> reader;
    APM_RETURN_IF_ERROR(LogReader::Open(env_, WalPath(number), &reader));
    std::string payload;
    while (reader->ReadRecord(&payload)) {
      uint64_t seq;
      uint8_t type;
      Slice key, value;
      if (!DecodeWalRecord(Slice(payload), &seq, &type, &key, &value)) {
        // The frame's checksum matched but the payload is not a WAL
        // record: this is damage, not an interrupted append.
        return Status::Corruption("undecodable WAL record in " +
                                  WalPath(number));
      }
      wal_replayed_records_++;
      if (type == kWalPut) {
        mem_->Put(key, value, seq);
      } else if (type == kWalDelete) {
        mem_->Delete(key, seq);
      } else if (type == kWalBatch) {
        // `value` holds the batch body; ops get seq, seq+1, ...
        Slice ops = value;
        uint64_t op_seq = seq;
        while (!ops.empty()) {
          uint8_t op_type = static_cast<uint8_t>(ops[0]);
          ops.RemovePrefix(1);
          Slice op_key, op_value;
          if (!GetLengthPrefixedSlice(&ops, &op_key) ||
              !GetLengthPrefixedSlice(&ops, &op_value)) {
            break;
          }
          if (op_type == kWalPut) {
            mem_->Put(op_key, op_value, op_seq);
          } else if (op_type == kWalDelete) {
            mem_->Delete(op_key, op_seq);
          }
          op_seq++;
        }
        seq = op_seq > seq ? op_seq - 1 : seq;
      }
      max_seq = std::max(max_seq, seq);
    }
    // Distinguish how the log ended: a torn tail from an interrupted
    // append is expected after power loss, but mid-log damage means
    // acknowledged records after the damage are unrecoverable.
    APM_RETURN_IF_ERROR(reader->status());
    if (reader->DroppedBytes() > 0) {
      APM_LOG_WARN("lsm: dropped %" PRIu64 " torn-tail bytes from %s",
                   reader->DroppedBytes(), WalPath(number).c_str());
      wal_dropped_bytes_ += reader->DroppedBytes();
    }
  }
  versions_->set_last_seq(max_seq);

  // Persist replayed data so the old WAL files can be removed. The
  // memtable is multi-version (one entry per write, not per key), while
  // SSTables must hold one entry per key — dedup keeps the newest version
  // and preserves tombstones so they still shadow older tables.
  if (mem_->EntryCount() > 0) {
    auto iter = NewDedupIterator(mem_->NewIterator(),
                                 /*skip_tombstones=*/false);
    iter->SeekToFirst();
    std::vector<FileMeta> outputs;
    std::vector<uint64_t> numbers;
    APM_RETURN_IF_ERROR(WriteTables(iter.get(), /*single_output=*/true,
                                    /*output_level=*/0, &outputs, &numbers));
    VersionEdit edit;
    for (const auto& meta : outputs) {
      edit.added.push_back({0, meta});
      APM_RETURN_IF_ERROR(OpenTable(meta));
    }
    // Every replayed WAL is numbered below the post-recovery live WAL;
    // marking them flushed keeps a crash before the removals below from
    // re-applying them on the next recovery.
    edit.has_log_number = true;
    edit.log_number = wal_number_;
    APM_RETURN_IF_ERROR(versions_->LogAndApply(edit));
    mem_ = std::make_shared<MemTable>(options_.arena_block_bytes,
                                      options_.memtable_shards);
    num_flushes_++;
  }
  for (uint64_t number : wal_numbers) {
    env_->RemoveFile(WalPath(number));
  }
  return Status::OK();
}

Status DB::Close() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return close_status_;
    closed_ = true;
    // Drain in-flight write groups: a leader may be appending to the WAL
    // outside mu_, and the WAL is synced/closed below.
    while (!writers_.empty()) cv_.wait(lock);
    // Drain any pending flush first: the immutable memtable's WAL was
    // closed without a sync at rotation, so until the flush lands in a
    // synced SSTable those acknowledged writes are only in page cache.
    while (imm_ != nullptr && bg_error_.ok()) cv_.wait(lock);
    shutting_down_ = true;
    cv_.notify_all();
    compaction_cv_.notify_all();
  }
  // In-flight compaction jobs run to completion; the pool threads exit
  // once shutting_down_ is visible at the top of their loops.
  if (flush_thread_.joinable()) flush_thread_.join();
  for (auto& t : compaction_threads_) {
    if (t.joinable()) t.join();
  }
  Status s;
  if (wal_ != nullptr) {
    // Make acknowledged records durable before closing: with
    // sync_writes=false they are otherwise only in the OS page cache, and
    // a clean close must never lose acknowledged writes.
    s = wal_->Sync();
    Status close_status = wal_->Close();
    if (s.ok()) s = close_status;
    wal_.reset();
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Unlink whatever zombie files are now unreferenced. Tables still held
  // by a user's live snapshot iterator stay readable (the Table keeps its
  // file handle); their files become orphans that the next Open removes.
  CollectZombiesLocked();
  close_status_ = s;
  return s;
}

DB::~DB() {
  Status s = Close();
  if (!s.ok()) {
    APM_LOG_WARN("lsm: WAL sync/close failed at shutdown: %s",
                 s.ToString().c_str());
  }
}

Status DB::MakeRoomForWrite(std::unique_lock<std::mutex>* lock) {
  // One bounded delay per write group: at the slowdown trigger each
  // leader pays ~1ms once, smoothly shedding ingest rate instead of
  // letting L0 race from "fine" straight to a hard stop.
  bool allow_delay = options_.level0_slowdown_trigger > 0;
  bool counted_stop = false;
  for (;;) {
    // Once a WAL or flush failure is recorded the engine refuses writes:
    // continuing could acknowledge records that recovery cannot honor.
    if (!bg_error_.ok()) return bg_error_;
    const int l0_files = versions_->NumFiles(0);
    if (allow_delay && l0_files >= options_.level0_slowdown_trigger &&
        (options_.level0_stop_trigger == 0 ||
         l0_files < options_.level0_stop_trigger)) {
      allow_delay = false;
      compaction_cv_.notify_all();
      const uint64_t start = NowMicros();
      lock->unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      lock->lock();
      stall_slowdown_micros_ += NowMicros() - start;
      stall_slowdown_writes_++;
      continue;
    }
    if (mem_->ApproximateMemoryUsage() < options_.memtable_bytes) {
      return Status::OK();
    }
    if (imm_ != nullptr) {
      // Backpressure: the previous memtable is still being flushed.
      cv_.wait(*lock);
      continue;
    }
    if (options_.level0_stop_trigger > 0 &&
        l0_files >= options_.level0_stop_trigger) {
      // Rotating now would soon land another L0 file; hold the writer
      // until compaction brings the count back down (job completions
      // notify cv_).
      if (!counted_stop) {
        counted_stop = true;
        stall_stop_writes_++;
      }
      compaction_cv_.notify_all();
      const uint64_t start = NowMicros();
      cv_.wait(*lock);
      stall_stop_micros_ += NowMicros() - start;
      continue;
    }
    // Rotate memtable and WAL.
    uint64_t new_wal_number = versions_->NewFileNumber();
    std::unique_ptr<WritableFile> wal_file;
    Status s = env_->NewWritableFile(WalPath(new_wal_number), &wal_file);
    if (s.ok() && options_.sync_writes) {
      s = env_->SyncDir(options_.dir);
    }
    if (!s.ok()) {
      // A failed rotation leaves half-rotated state (a fresh file number,
      // possibly a created-but-unusable segment); letting the next writer
      // retry against it risks interleaving two generations of the log.
      // Fence exactly like the wal_->Close() failure below.
      if (bg_error_.ok()) bg_error_ = s;
      return s;
    }
    Status close_status = wal_->Close();
    if (!close_status.ok()) {
      // The rotating WAL holds acknowledged records; if its tail never
      // reached the OS, a crash before the memtable flush lands would
      // lose them. Fail the write and stop accepting new ones.
      bg_error_ = close_status;
      return close_status;
    }
    wal_ = std::make_unique<LogWriter>(std::move(wal_file));
    imm_ = std::move(mem_);
    imm_wal_number_ = wal_number_;
    wal_number_ = new_wal_number;
    mem_ = std::make_shared<MemTable>(options_.arena_block_bytes,
                                      options_.memtable_shards);
    RefreshViewLocked();
    cv_.notify_all();
  }
  return Status::OK();
}

Status DB::Put(const Slice& key, const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(batch);
}

Status DB::Delete(const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(batch);
}

Status DB::ValidateBatch(const WriteBatch& batch) {
  Slice ops(batch.rep_);
  size_t count = 0;
  while (!ops.empty()) {
    uint8_t op_type = static_cast<uint8_t>(ops[0]);
    ops.RemovePrefix(1);
    Slice key, value;
    if ((op_type != kWalPut && op_type != kWalDelete) ||
        !GetLengthPrefixedSlice(&ops, &key) ||
        !GetLengthPrefixedSlice(&ops, &value)) {
      return Status::Corruption("malformed write batch");
    }
    count++;
  }
  if (count != batch.Count()) {
    return Status::Corruption("write batch count disagrees with contents");
  }
  return Status::OK();
}

void DB::ApplyBatchRep(MemTable* mem, const Slice& rep, uint64_t base_seq) {
  Slice ops = rep;
  uint64_t seq = base_seq;
  while (!ops.empty()) {
    uint8_t op_type = static_cast<uint8_t>(ops[0]);
    ops.RemovePrefix(1);
    Slice key, value;
    if (!GetLengthPrefixedSlice(&ops, &key) ||
        !GetLengthPrefixedSlice(&ops, &value)) {
      // Unreachable: every rep was validated before entering the queue.
      break;
    }
    if (op_type == kWalPut) {
      mem->Put(key, value, seq);
    } else {
      mem->Delete(key, seq);
    }
    seq++;
  }
}

void DB::ApplyShardOps(MemTable* mem, int shard, const Slice& rep,
                       uint64_t base_seq) {
  // Each claimer re-walks the whole rep and keeps only its shard's ops:
  // zero-copy and allocation-free, and the N passes run on up to N
  // threads, so wall-clock is one decode pass plus the shard's inserts.
  const int num_shards = mem->num_shards();
  Slice ops = rep;
  uint64_t seq = base_seq;
  while (!ops.empty()) {
    uint8_t op_type = static_cast<uint8_t>(ops[0]);
    ops.RemovePrefix(1);
    Slice key, value;
    if (!GetLengthPrefixedSlice(&ops, &key) ||
        !GetLengthPrefixedSlice(&ops, &value)) {
      break;  // unreachable: reps are validated before queueing
    }
    if (MemTable::ShardOf(key, num_shards) == static_cast<uint32_t>(shard)) {
      if (op_type == kWalPut) {
        mem->PutToShard(shard, key, value, seq);
      } else {
        mem->DeleteToShard(shard, key, seq);
      }
    }
    seq++;
  }
}

void DB::HelpApplyGroup(const std::shared_ptr<GroupApply>& group) {
  {
    // Nothing reaches a skip list before the group's WAL record is
    // written: the memtable must never run ahead of the log, or a crash
    // could surface acknowledged-but-unlogged entries to readers.
    std::unique_lock<std::mutex> lock(group->mu);
    while (!group->wal_done) group->cv.wait(lock);
    if (!group->wal_status.ok()) return;
  }
  int shard = 0;
  while (group->claims.Claim(&shard)) {
    ApplyShardOps(group->mem, shard, Slice(group->rep), group->base_seq);
    if (group->claims.Finish()) {
      // Every shard is in. The release store (paired with readers'
      // acquire loads) publishes the whole group at once: Get/Scan cap
      // their memtable visibility at applied_seq_, so no reader ever
      // observes a batch applied to some shards but not others.
      applied_seq_.store(group->last_seq, std::memory_order_release);
      std::lock_guard<std::mutex> lock(group->mu);
      group->all_applied = true;
      group->cv.notify_all();
    }
  }
}

Status DB::Write(const WriteBatch& batch) {
  if (batch.Count() == 0) return Status::OK();
  // Reject malformed batches before a sequence number is consumed or a
  // WAL byte written: a bad rep_ used to be logged, partially applied,
  // and replayed on recovery.
  APM_RETURN_IF_ERROR(ValidateBatch(batch));

  Writer w(&batch);
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return Status::IOError("db closed");
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) {
    if (w.group != nullptr) {
      // Our group's leader finished the sequence allocation and asked the
      // group to apply its per-shard sub-batches in parallel; help
      // outside mu_, then go back to waiting for the leader's verdict.
      std::shared_ptr<GroupApply> group = std::move(w.group);
      lock.unlock();
      HelpApplyGroup(group);
      lock.lock();
      continue;
    }
    w.cv.wait(lock);
  }
  if (w.done) return w.status;  // a leader committed this batch for us

  // This thread is the leader: it stays at the front of the queue until
  // it pops its whole group below, so no other thread touches the WAL
  // meanwhile and at most one group is ever in flight against the
  // memtable.
  Status s = MakeRoomForWrite(&lock);
  Writer* last_writer = &w;
  if (s.ok()) {
    // Merge every queued batch (bounded, to keep follower latency sane)
    // into one rep covering contiguous sequence numbers.
    constexpr size_t kMaxGroupBytes = 1 << 20;
    const uint64_t base_seq = versions_->last_seq() + 1;
    std::string group_rep;
    size_t group_count = 0;
    size_t group_writers = 0;
    for (Writer* candidate : writers_) {
      if (candidate != &w &&
          group_rep.size() + candidate->batch->rep_.size() > kMaxGroupBytes) {
        break;
      }
      group_rep.append(candidate->batch->rep_);
      group_count += candidate->batch->Count();
      group_writers++;
      last_writer = candidate;
    }
    versions_->set_last_seq(base_seq + group_count - 1);
    std::string record;
    EncodeWalRecord(&record, base_seq, kWalBatch, Slice(), Slice(group_rep));
    MemTable* mem = mem_.get();
    LogWriter* wal = wal_.get();
    const uint64_t last_seq = base_seq + group_count - 1;

    // The parallel shard-claim apply pays off only when there are both
    // shards to split across and followers to help; a single-writer
    // group (the 1-thread benchmark case) takes the serial path below,
    // which routes per key inside MemTable::Put and allocates nothing —
    // identical in behavior and cost to the pre-shard leader apply.
    const bool parallel = mem->num_shards() > 1 && group_writers > 1;
    std::shared_ptr<GroupApply> group;
    if (parallel) {
      group = std::make_shared<GroupApply>();
      group->rep = std::move(group_rep);
      group->base_seq = base_seq;
      group->last_seq = last_seq;
      group->mem = mem;
      group->claims.Reset(mem->num_shards());
      for (Writer* candidate : writers_) {
        if (candidate == &w) continue;
        candidate->group = group;
        candidate->cv.notify_one();
        if (candidate == last_writer) break;
      }
    }

    // The expensive part — one WAL append (and at most one fsync) for the
    // whole group, plus the memtable inserts — runs outside mu_. Readers
    // are already lock-free; this also unblocks Flush/GetStats/background
    // work for the duration of the I/O.
    lock.unlock();
    s = wal->AddRecord(record, options_.sync_writes);
    if (parallel) {
      {
        std::lock_guard<std::mutex> group_lock(group->mu);
        group->wal_done = true;
        group->wal_status = s;
      }
      group->cv.notify_all();
      if (s.ok()) {
        // Join the fan-out; whichever thread retires the last shard
        // publishes applied_seq_ (WAL order == seq order == publication
        // order, since the next leader cannot start until this group is
        // popped below). Then wait out any follower still applying.
        HelpApplyGroup(group);
        std::unique_lock<std::mutex> group_lock(group->mu);
        while (!group->all_applied) group->cv.wait(group_lock);
      }
    } else if (s.ok()) {
      ApplyBatchRep(mem, Slice(group_rep), base_seq);
      // Publish the group to readers only once every entry is in: readers
      // cap their memtable visibility at applied_seq_, which keeps both
      // batches and whole groups atomic under concurrent Get/Scan.
      applied_seq_.store(last_seq, std::memory_order_release);
    }
    lock.lock();
    if (!s.ok() && bg_error_.ok()) {
      // The WAL may now end in a partial frame; further appends would
      // write beyond it and turn the next recovery into mid-log
      // corruption.
      bg_error_ = s;
    }
    write_groups_++;
    grouped_writes_ += group_writers;
    if (parallel && s.ok()) parallel_apply_groups_++;
  }

  // Pop the group (leader included), report the shared status, promote
  // the next leader.
  for (;;) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != &w) {
      ready->status = s;
      ready->done = true;
      ready->cv.notify_one();
    }
    if (ready == last_writer) break;
  }
  if (!writers_.empty()) {
    writers_.front()->cv.notify_one();
  } else {
    cv_.notify_all();  // Flush()/Close() may be draining the queue
  }
  return s;
}

Status DB::Get(const ReadOptions& read_options, const Slice& key,
               std::string* value) {
  // Never touches mu_: the view pins every structure the read needs, and
  // applied_seq_ (loaded after the view, so it covers everything the view
  // contains) hides half-applied write groups in the live memtable.
  std::shared_ptr<const ReadView> view = CurrentView();
  const uint64_t seq_limit = applied_seq_.load(std::memory_order_acquire);

  // The live and immutable memtables hold the newest entries; a hit
  // there is authoritative.
  MemTable::GetResult r = view->mem->Get(key, value, nullptr, seq_limit);
  if (r == MemTable::GetResult::kFound) return Status::OK();
  if (r == MemTable::GetResult::kDeleted) return Status::NotFound();
  if (view->imm != nullptr) {
    // The immutable memtable is fully applied by construction (rotation
    // only happens between write groups), so no seq cap is needed.
    r = view->imm->Get(key, value);
    if (r == MemTable::GetResult::kFound) return Status::OK();
    if (r == MemTable::GetResult::kDeleted) return Status::NotFound();
  }
  const std::vector<std::shared_ptr<Table>>& candidates = view->tables;

  // Search every table that may contain the key and keep the entry with
  // the highest sequence number: with size-tiered compaction, no total
  // order exists between tables (see Iterator::seq()).
  uint64_t best_seq = 0;
  bool found = false;
  bool deleted = false;
  std::string candidate_value;
  for (const auto& table : candidates) {
    Table::GetResult result;
    uint64_t seq = 0;
    std::string v;
    APM_RETURN_IF_ERROR(table->Get(read_options, key, &result, &v, &seq));
    if (result == Table::GetResult::kAbsent) continue;
    if (!found || seq > best_seq) {
      found = true;
      best_seq = seq;
      deleted = (result == Table::GetResult::kDeleted);
      candidate_value = std::move(v);
    }
  }
  if (!found || deleted) return Status::NotFound();
  *value = std::move(candidate_value);
  return Status::OK();
}

Status DB::Scan(const ReadOptions& read_options, const Slice& start,
                int count,
                std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  // No mu_: the skip list supports concurrent traversal while the
  // group-commit leader inserts, and the seq cap gives the whole scan one
  // consistent point-in-time view — so scans no longer block writers.
  std::shared_ptr<const ReadView> view = CurrentView();
  const uint64_t seq_limit = applied_seq_.load(std::memory_order_acquire);

  // With prefix_same_as_start the caller promises to consume only keys
  // sharing the scan prefix, so the scan is bounded: tables whose prefix
  // bloom rules the prefix out are skipped entirely (the way point gets
  // skip on the full-key bloom), and the result is truncated when a key
  // leaves the prefix range. A table built with a *shorter* prefix than
  // the scan's may still be probed — every returned key shares the scan
  // prefix and therefore the table's shorter one, so a negative remains
  // authoritative; a table with a longer prefix is never skipped.
  Slice prefix;
  if (read_options.prefix_same_as_start && options_.prefix_bloom_length > 0) {
    prefix = Slice(start.data(),
                   std::min(start.size(), options_.prefix_bloom_length));
  }

  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(view->mem->NewIterator(seq_limit));
  if (view->imm != nullptr) children.push_back(view->imm->NewIterator());
  for (const auto& table : view->tables) {
    const size_t table_prefix_len = table->prefix_bloom_length();
    if (table_prefix_len > 0 && table_prefix_len <= prefix.size() &&
        !table->MayMatchPrefix(Slice(prefix.data(), table_prefix_len))) {
      prefix_bloom_skips_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    children.push_back(table->NewIterator(read_options));
  }
  auto iter = NewDedupIterator(NewMergingIterator(std::move(children)),
                               /*skip_tombstones=*/true);
  iter->Seek(start);
  while (iter->Valid() && static_cast<int>(out->size()) < count) {
    if (!prefix.empty() &&
        (iter->key().size() < prefix.size() ||
         Slice(iter->key().data(), prefix.size()).Compare(prefix) != 0)) {
      break;  // sorted keys: once outside the prefix range, always outside
    }
    out->emplace_back(iter->key().ToString(), iter->value().ToString());
    iter->Next();
  }
  return iter->status();
}

namespace {

/// Ordered in-memory entries, used for the frozen copy of the live
/// memtable inside snapshot iterators.
class VectorIterator final : public Iterator {
 public:
  struct Entry {
    std::string key;
    std::string value;
    uint64_t seq;
    bool tombstone;
  };

  explicit VectorIterator(std::vector<Entry> entries)
      : entries_(std::move(entries)) {}

  bool Valid() const override {
    return index_ >= 0 && index_ < static_cast<int>(entries_.size());
  }
  void SeekToFirst() override { index_ = entries_.empty() ? -1 : 0; }
  void Seek(const Slice& target) override {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), target,
        [](const Entry& e, const Slice& t) { return Slice(e.key) < t; });
    index_ = it == entries_.end() ? static_cast<int>(entries_.size())
                                  : static_cast<int>(it - entries_.begin());
  }
  void Next() override { index_++; }
  Slice key() const override { return Slice(entries_[index_].key); }
  Slice value() const override { return Slice(entries_[index_].value); }
  bool IsTombstone() const override { return entries_[index_].tombstone; }
  uint64_t seq() const override { return entries_[index_].seq; }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<Entry> entries_;
  int index_ = -1;
};

/// Owns the pinned resources of a snapshot and forwards to the merged
/// view over them.
class SnapshotIterator final : public Iterator {
 public:
  SnapshotIterator(std::unique_ptr<Iterator> merged,
                   std::shared_ptr<MemTable> imm,
                   std::vector<std::shared_ptr<Table>> tables)
      : merged_(std::move(merged)),
        imm_(std::move(imm)),
        tables_(std::move(tables)) {}

  bool Valid() const override { return merged_->Valid(); }
  void SeekToFirst() override { merged_->SeekToFirst(); }
  void Seek(const Slice& target) override { merged_->Seek(target); }
  void Next() override { merged_->Next(); }
  Slice key() const override { return merged_->key(); }
  Slice value() const override { return merged_->value(); }
  bool IsTombstone() const override { return merged_->IsTombstone(); }
  uint64_t seq() const override { return merged_->seq(); }
  Status status() const override { return merged_->status(); }

 private:
  std::unique_ptr<Iterator> merged_;
  std::shared_ptr<MemTable> imm_;
  std::vector<std::shared_ptr<Table>> tables_;
};

}  // namespace

std::unique_ptr<Iterator> DB::NewSnapshotIterator(
    const ReadOptions& read_options) {
  std::vector<std::unique_ptr<Iterator>> children;
  std::shared_ptr<MemTable> imm;
  std::vector<std::shared_ptr<Table>> tables;
  {
    // Like Get/Scan: the view pins the structures and the seq cap fixes
    // the point in time, without mu_.
    std::shared_ptr<const ReadView> view = CurrentView();
    const uint64_t seq_limit = applied_seq_.load(std::memory_order_acquire);
    // Freeze the live memtable by copying it (bounded by memtable_bytes).
    // Entries arrive (key asc, seq desc), so keeping only the first
    // version of each key collapses the multi-version history.
    std::vector<VectorIterator::Entry> frozen;
    frozen.reserve(view->mem->EntryCount());
    auto mem_iter = view->mem->NewIterator(seq_limit);
    for (mem_iter->SeekToFirst(); mem_iter->Valid(); mem_iter->Next()) {
      if (!frozen.empty() && Slice(frozen.back().key) == mem_iter->key()) {
        continue;  // older version of the key just captured
      }
      frozen.push_back(VectorIterator::Entry{
          mem_iter->key().ToString(), mem_iter->value().ToString(),
          mem_iter->seq(), mem_iter->IsTombstone()});
    }
    children.push_back(std::make_unique<VectorIterator>(std::move(frozen)));
    if (view->imm != nullptr) {
      imm = view->imm;
      children.push_back(imm->NewIterator());
    }
    for (const auto& table : view->tables) {
      tables.push_back(table);
      children.push_back(table->NewIterator(read_options));
    }
  }
  auto merged = NewDedupIterator(NewMergingIterator(std::move(children)),
                                 /*skip_tombstones=*/true);
  return std::make_unique<SnapshotIterator>(std::move(merged), std::move(imm),
                                            std::move(tables));
}

Status DB::WriteTables(Iterator* iter, bool single_output, int output_level,
                       std::vector<FileMeta>* outputs,
                       std::vector<uint64_t>* numbers) {
  std::unique_ptr<TableBuilder> builder;
  uint64_t current_number = 0;
  // Rate-limiter charging: pay for bytes in ~64 KiB installments as the
  // builder grows, so background I/O is smoothed rather than charged in
  // one table-sized burst at Finish.
  constexpr uint64_t kChargeChunk = 64 * 1024;
  uint64_t charged = 0;
  auto open_builder = [&]() -> Status {
    current_number = versions_->NewFileNumber();
    builder = std::make_unique<TableBuilder>(options_, env_,
                                             TablePath(current_number));
    charged = 0;
    return builder->Open();
  };
  auto finish_builder = [&]() -> Status {
    if (builder == nullptr || builder->NumEntries() == 0) {
      if (builder != nullptr) builder->Abandon();
      builder.reset();
      return Status::OK();
    }
    APM_RETURN_IF_ERROR(builder->Finish());
    FileMeta meta;
    meta.number = current_number;
    meta.file_size = builder->FileSize();
    meta.num_entries = builder->NumEntries();
    meta.format_version = builder->format_version();
    meta.smallest = builder->smallest_key();
    meta.largest = builder->largest_key();
    if (rate_limiter_ != nullptr && meta.file_size > charged) {
      rate_limiter_->Request(meta.file_size - charged);
    }
    outputs->push_back(std::move(meta));
    numbers->push_back(current_number);
    compaction_bytes_written_.fetch_add(builder->FileSize(),
                                        std::memory_order_relaxed);
    compaction_written_per_level_[output_level].fetch_add(
        builder->FileSize(), std::memory_order_relaxed);
    builder.reset();
    return Status::OK();
  };

  const uint64_t max_output = options_.memtable_bytes * 2;
  for (; iter->Valid(); iter->Next()) {
    if (builder == nullptr) {
      APM_RETURN_IF_ERROR(open_builder());
    }
    APM_RETURN_IF_ERROR(builder->Add(iter->key(), iter->value(), iter->seq(),
                                     iter->IsTombstone()));
    if (rate_limiter_ != nullptr) {
      const uint64_t estimate = builder->CurrentSizeEstimate();
      if (estimate >= charged + kChargeChunk) {
        rate_limiter_->Request(estimate - charged);
        charged = estimate;
      }
    }
    if (!single_output && builder->CurrentSizeEstimate() >= max_output) {
      APM_RETURN_IF_ERROR(finish_builder());
    }
  }
  APM_RETURN_IF_ERROR(iter->status());
  return finish_builder();
}

void DB::FlushThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutting_down_) {
    if (imm_ != nullptr && bg_error_.ok()) {
      lock.unlock();
      BackgroundFlush();
      lock.lock();
      // Writers waiting on imm_, Flush/Close drains, and the compaction
      // pool (a flush may have pushed L0 over a trigger) all need waking.
      cv_.notify_all();
      compaction_cv_.notify_all();
      continue;
    }
    cv_.wait(lock);
  }
}

void DB::CompactionThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutting_down_) {
    CompactionJob job;
    if (bg_error_.ok() && PickCompaction(&job)) {
      running_compactions_++;
      lock.unlock();
      RunCompaction(job);
      lock.lock();
      running_compactions_--;
      versions_->ReleaseFiles(job.inputs);
      if (job.manual) manual_compaction_running_ = false;
      // Stalled writers watch the L0 count on cv_; peers retry picks on
      // compaction_cv_ (released claims may unblock them, and one
      // compaction often makes the next one eligible).
      cv_.notify_all();
      compaction_cv_.notify_all();
      continue;
    }
    compaction_cv_.wait(lock);
  }
}

void DB::BackgroundFlush() {
  // imm_ is immutable; safe to read without the mutex. Dedup collapses
  // the multi-version memtable into one entry per key (tombstones kept)
  // so the SSTable invariant of unique, ordered keys holds.
  auto iter = NewDedupIterator(imm_->NewIterator(),
                               /*skip_tombstones=*/false);
  iter->SeekToFirst();
  std::vector<FileMeta> outputs;
  std::vector<uint64_t> numbers;
  // File numbers come from an atomic counter, so the flush I/O can run
  // without blocking foreground operations.
  Status s = WriteTables(iter.get(), /*single_output=*/true,
                         /*output_level=*/0, &outputs, &numbers);
  std::lock_guard<std::mutex> lock(mu_);
  if (!s.ok()) {
    bg_error_ = s;
    return;
  }
  VersionEdit edit;
  for (const auto& meta : outputs) {
    edit.added.push_back({0, meta});
    Status open_status = OpenTable(meta);
    if (!open_status.ok()) {
      bg_error_ = open_status;
      return;
    }
  }
  edit.has_log_number = true;
  edit.log_number = wal_number_;
  s = versions_->LogAndApply(edit);
  if (!s.ok()) {
    bg_error_ = s;
    return;
  }
  env_->RemoveFile(WalPath(imm_wal_number_));
  imm_.reset();
  num_flushes_++;
  RefreshViewLocked();
  CollectZombiesLocked();
}

uint64_t DB::MaxBytesForLevel(int level) const {
  uint64_t bytes = options_.level1_max_bytes;
  for (int i = 1; i < level; i++) bytes *= 10;
  return bytes;
}

bool DB::PickCompaction(CompactionJob* job) {
  // Called with mu_ held. A successful pick claims job->inputs in the
  // VersionSet; concurrent picks skip claimed files, so two in-flight
  // jobs can never share (or range-overlap through the overlap scans
  // below) an input table. The caller releases the claims when the job
  // finishes.
  if (manual_compaction_requested_ || manual_compaction_running_) {
    if (manual_compaction_running_) return false;
    // A manual compaction wants *every* table; wait for in-flight jobs
    // to drain (their completions re-signal compaction_cv_) and suppress
    // new auto picks meanwhile so the claim set empties.
    if (versions_->NumClaimed() > 0) return false;
    job->inputs.clear();
    job->input_levels.clear();
    for (int level = 0; level < versions_->NumLevels(); level++) {
      for (const auto& f : versions_->files(level)) {
        job->inputs.push_back(f);
        job->input_levels.push_back(level);
      }
    }
    if (job->inputs.empty()) {
      // Nothing to do; release the waiter in CompactAll.
      manual_compaction_requested_ = false;
      cv_.notify_all();
      return false;
    }
    job->output_level =
        options_.compaction_style == CompactionStyle::kLeveled
            ? versions_->NumLevels() - 1
            : 0;
    job->drop_tombstones = true;
    job->single_output = true;
    job->manual = true;
    manual_compaction_requested_ = false;
    manual_compaction_running_ = true;
    versions_->ClaimFiles(job->inputs);
    return true;
  }

  if (options_.compaction_style == CompactionStyle::kSizeTiered) {
    // Bucket level-0 files by similar size (Cassandra STCS). Files
    // claimed by an in-flight job are invisible to this pick, so a
    // second thread buckets only the remainder — disjoint by
    // construction.
    std::vector<FileMeta> files;
    for (const auto& f : versions_->files(0)) {
      if (!versions_->IsClaimed(f.number)) files.push_back(f);
    }
    if (static_cast<int>(files.size()) < options_.size_tiered_min_files) {
      return false;
    }
    std::sort(files.begin(), files.end(),
              [](const FileMeta& a, const FileMeta& b) {
                return a.file_size < b.file_size;
              });
    std::vector<FileMeta> bucket;
    double bucket_avg = 0;
    for (const auto& f : files) {
      double size = static_cast<double>(f.file_size);
      if (bucket.empty() ||
          (size >= bucket_avg * options_.size_tiered_bucket_low &&
           size <= bucket_avg * options_.size_tiered_bucket_high)) {
        double total = bucket_avg * static_cast<double>(bucket.size()) + size;
        bucket.push_back(f);
        bucket_avg = total / static_cast<double>(bucket.size());
      } else {
        if (static_cast<int>(bucket.size()) >= options_.size_tiered_min_files) {
          break;  // compact the smallest eligible bucket first
        }
        bucket.clear();
        bucket.push_back(f);
        bucket_avg = size;
      }
      if (bucket.size() >= 32) break;  // cap one compaction's width
    }
    if (static_cast<int>(bucket.size()) < options_.size_tiered_min_files) {
      // Forward-progress escape valve. At the stop trigger writers are
      // hard-blocked, so the flushes that could complete a similarity
      // bucket can never arrive; if no bucket qualifies either (e.g. the
      // trigger count splits into bands of min_files-1 lookalikes), the
      // stall would be permanent. Merge the smallest files regardless of
      // similarity: the L0 count drops below the trigger and writers
      // resume. Needs >= 2 inputs or the merge wouldn't shrink anything.
      const int escape_width = std::min(options_.size_tiered_min_files,
                                        static_cast<int>(files.size()));
      if (options_.level0_stop_trigger <= 0 ||
          static_cast<int>(files.size()) < options_.level0_stop_trigger ||
          escape_width < 2) {
        return false;
      }
      bucket.assign(files.begin(), files.begin() + escape_width);
      stall_escape_compactions_++;
    }
    job->inputs = std::move(bucket);
    job->input_levels.assign(job->inputs.size(), 0);
    job->output_level = 0;
    job->drop_tombstones = job->inputs.size() == versions_->TotalFiles();
    job->single_output = true;
    versions_->ClaimFiles(job->inputs);
    return true;
  }

  // Leveled compaction.
  if (versions_->NumFiles(0) >= options_.level0_compaction_trigger &&
      !versions_->AnyClaimed(versions_->files(0))) {
    // L0→L1 jobs are serialized by the claim check above: level-0 files
    // overlap each other, and two concurrent L0 jobs could emit
    // overlapping level-1 outputs even from disjoint inputs.
    job->inputs = versions_->files(0);
    // Level-0 files overlap; take all of level 1 that intersects any of
    // them. Level-1 ranges are disjoint, so a linear filter suffices.
    std::string smallest, largest;
    for (const auto& f : job->inputs) {
      if (smallest.empty() || Slice(f.smallest).Compare(smallest) < 0) {
        smallest = f.smallest;
      }
      if (largest.empty() || Slice(f.largest).Compare(largest) > 0) {
        largest = f.largest;
      }
    }
    job->input_levels.assign(job->inputs.size(), 0);
    bool overlap_claimed = false;
    for (const auto& f : versions_->files(1)) {
      if (Slice(f.largest).Compare(smallest) >= 0 &&
          Slice(f.smallest).Compare(largest) <= 0) {
        if (versions_->IsClaimed(f.number)) {
          overlap_claimed = true;
          break;
        }
        job->inputs.push_back(f);
        job->input_levels.push_back(1);
      }
    }
    if (!overlap_claimed) {
      job->output_level = 1;
      job->drop_tombstones = job->inputs.size() == versions_->TotalFiles();
      job->single_output = false;
      versions_->ClaimFiles(job->inputs);
      return true;
    }
    job->inputs.clear();
    job->input_levels.clear();
  }
  for (int level = 1; level < versions_->NumLevels() - 1; level++) {
    if (versions_->LevelBytes(level) <= MaxBytesForLevel(level)) continue;
    const auto& files = versions_->files(level);
    if (files.empty()) continue;
    // Round-robin through the level, LevelDB-style: resume after the
    // largest key of the last file compacted out of it, skipping files
    // another job has claimed.
    const std::string& ptr = versions_->CompactPointer(level);
    const FileMeta* pick = nullptr;
    for (const auto& f : files) {
      if (versions_->IsClaimed(f.number)) continue;
      if (!ptr.empty() && Slice(f.largest).Compare(ptr) <= 0) continue;
      pick = &f;
      break;
    }
    if (pick == nullptr) {  // wrap around
      for (const auto& f : files) {
        if (!versions_->IsClaimed(f.number)) {
          pick = &f;
          break;
        }
      }
    }
    if (pick == nullptr) continue;  // whole level in flight
    job->inputs.clear();
    job->input_levels.clear();
    job->inputs.push_back(*pick);
    job->input_levels.push_back(level);
    bool overlap_claimed = false;
    for (const auto& f : versions_->files(level + 1)) {
      if (Slice(f.largest).Compare(pick->smallest) >= 0 &&
          Slice(f.smallest).Compare(pick->largest) <= 0) {
        if (versions_->IsClaimed(f.number)) {
          overlap_claimed = true;
          break;
        }
        job->inputs.push_back(f);
        job->input_levels.push_back(level + 1);
      }
    }
    if (overlap_claimed) continue;
    job->output_level = level + 1;
    job->drop_tombstones = job->inputs.size() == versions_->TotalFiles();
    job->single_output = false;
    versions_->SetCompactPointer(level, pick->largest);
    versions_->ClaimFiles(job->inputs);
    return true;
  }
  return false;
}

namespace {

/// Restricts an iterator to keys strictly below `end` (empty = no bound);
/// used to hand each subcompaction its own slice of the merged key space.
class ClampIterator final : public Iterator {
 public:
  ClampIterator(std::unique_ptr<Iterator> base, std::string end)
      : base_(std::move(base)), end_(std::move(end)) {}

  bool Valid() const override {
    return base_->Valid() &&
           (end_.empty() || base_->key().Compare(Slice(end_)) < 0);
  }
  void SeekToFirst() override { base_->SeekToFirst(); }
  void Seek(const Slice& target) override { base_->Seek(target); }
  void Next() override { base_->Next(); }
  Slice key() const override { return base_->key(); }
  Slice value() const override { return base_->value(); }
  bool IsTombstone() const override { return base_->IsTombstone(); }
  uint64_t seq() const override { return base_->seq(); }
  Status status() const override { return base_->status(); }

 private:
  std::unique_ptr<Iterator> base_;
  std::string end_;
};

}  // namespace

Status DB::RunSubcompaction(const std::vector<std::shared_ptr<Table>>& inputs,
                            const CompactionJob& job, const std::string& start,
                            const std::string& end,
                            std::vector<FileMeta>* outputs,
                            std::vector<uint64_t>* numbers) {
  // Every subtask merges over *all* input tables (so dedup sees every
  // version of a key) but only consumes its [start, end) slice; the
  // slices partition the key space, so the concatenated outputs hold
  // each surviving key exactly once.
  ReadOptions read_options;
  read_options.fill_cache = false;
  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(inputs.size());
  for (const auto& table : inputs) {
    children.push_back(table->NewIterator(read_options));
  }
  auto merged = NewDedupIterator(NewMergingIterator(std::move(children)),
                                 /*skip_tombstones=*/job.drop_tombstones);
  auto clamped = std::make_unique<ClampIterator>(std::move(merged), end);
  if (start.empty()) {
    clamped->SeekToFirst();
  } else {
    clamped->Seek(Slice(start));
  }
  return WriteTables(clamped.get(), job.single_output, job.output_level,
                     outputs, numbers);
}

void DB::RunCompaction(const CompactionJob& job) {
  // Snapshot the input tables (immutable; no mutex needed to read them,
  // but fetching the shared_ptrs requires it).
  std::vector<std::shared_ptr<Table>> inputs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < job.inputs.size(); i++) {
      const auto& meta = job.inputs[i];
      auto it = tables_.find(meta.number);
      if (it == tables_.end()) {
        bg_error_ = Status::Corruption("compaction input table missing");
        return;
      }
      inputs.push_back(it->second);
      compaction_bytes_read_ += meta.file_size;
      compaction_read_per_level_[job.input_levels[i]] += meta.file_size;
    }
  }

  // Partition the job into subcompactions along the inputs' smallest
  // keys. Only multi-output (leveled) jobs are eligible: a size-tiered
  // bucket or manual compaction must emit exactly one table.
  std::vector<std::string> bounds;  // interior range boundaries
  if (!job.single_output && options_.subcompactions > 1 &&
      job.inputs.size() > 1) {
    std::vector<std::string> keys;
    for (const auto& meta : job.inputs) keys.push_back(meta.smallest);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    // The first key starts the unbounded leading range; the remaining
    // candidates split the space into at most `subcompactions` pieces.
    if (keys.size() > 1) {
      const size_t max_pieces = std::min<size_t>(
          static_cast<size_t>(options_.subcompactions), keys.size());
      const size_t step = (keys.size() + max_pieces - 1) / max_pieces;
      for (size_t i = step; i < keys.size(); i += step) {
        bounds.push_back(keys[i]);
      }
    }
  }
  const size_t pieces = bounds.size() + 1;

  std::vector<std::vector<FileMeta>> piece_outputs(pieces);
  std::vector<std::vector<uint64_t>> piece_numbers(pieces);
  Status s;
  if (pieces == 1) {
    s = RunSubcompaction(inputs, job, std::string(), std::string(),
                         &piece_outputs[0], &piece_numbers[0]);
  } else {
    std::vector<FanoutExecutor::Task> tasks;
    tasks.reserve(pieces);
    for (size_t i = 0; i < pieces; i++) {
      const std::string start = i == 0 ? std::string() : bounds[i - 1];
      const std::string end = i == pieces - 1 ? std::string() : bounds[i];
      tasks.push_back([this, &inputs, &job, start, end, &piece_outputs,
                       &piece_numbers, i]() {
        return RunSubcompaction(inputs, job, start, end, &piece_outputs[i],
                                &piece_numbers[i]);
      });
    }
    s = subcompaction_pool_->RunAll(std::move(tasks));
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (!s.ok()) {
    // Drop whatever outputs finished before the failure; partially built
    // tables were already abandoned by their builders, and anything left
    // behind is swept as an orphan at the next Open.
    for (const auto& numbers : piece_numbers) {
      for (uint64_t number : numbers) env_->RemoveFile(TablePath(number));
    }
    bg_error_ = s;
    return;
  }
  VersionEdit edit;
  for (const auto& meta : job.inputs) edit.removed.push_back(meta.number);
  for (const auto& outputs : piece_outputs) {
    for (const auto& meta : outputs) {
      edit.added.push_back({job.output_level, meta});
      Status open_status = OpenTable(meta);
      if (!open_status.ok()) {
        bg_error_ = open_status;
        return;
      }
    }
  }
  s = versions_->LogAndApply(edit);
  if (!s.ok()) {
    bg_error_ = s;
    return;
  }
  for (const auto& meta : job.inputs) {
    // The input tables leave the live version but their files are not
    // unlinked yet: an open snapshot iterator, an older ReadView, or a
    // concurrent job's merge may still be reading them. They park on the
    // zombie list until the last reference drops (CollectZombiesLocked).
    auto it = tables_.find(meta.number);
    if (it != tables_.end()) {
      zombies_.emplace(meta.number, std::move(it->second));
      tables_.erase(it);
    }
    cache_->EvictFile(meta.number);
  }
  num_compactions_++;
  compactions_per_level_[job.output_level]++;
  if (pieces > 1) num_subcompactions_ += pieces;
  // Readers holding the old view keep the dropped tables alive through
  // their shared_ptrs; new readers pick up the compacted set here.
  RefreshViewLocked();
  CollectZombiesLocked();
}

void DB::CollectZombiesLocked() {
  for (auto it = zombies_.begin(); it != zombies_.end();) {
    // One reference = the zombie map's own. The table left tables_ and
    // every republished view, so no new reference can be minted; the
    // count only falls. Destroying the Table closes its file handle
    // before the unlink.
    if (it->second.use_count() == 1) {
      const uint64_t number = it->first;
      it = zombies_.erase(it);
      env_->RemoveFile(TablePath(number));
    } else {
      ++it;
    }
  }
}

Status DB::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  // A group leader may be applying to mem_ outside mu_; rotating under it
  // would let those inserts land in a memtable already being flushed. The
  // predicate checks the writer queue and the pending flush *together* —
  // waiting on them one at a time would let a new leader slip in while we
  // wait for imm_ to drain. (Leaders finish by popping their group under
  // mu_ and notify cv_ when the queue empties.)
  while (!writers_.empty() || imm_ != nullptr) {
    if (!bg_error_.ok()) return bg_error_;
    cv_.wait(lock);
  }
  if (mem_->EntryCount() > 0) {
    // Rotate even a partially full memtable; mu_ is held from the waits
    // above through the rotation, so no new leader can start meanwhile.
    uint64_t new_wal_number = versions_->NewFileNumber();
    std::unique_ptr<WritableFile> wal_file;
    Status rotate_status =
        env_->NewWritableFile(WalPath(new_wal_number), &wal_file);
    if (rotate_status.ok() && options_.sync_writes) {
      rotate_status = env_->SyncDir(options_.dir);
    }
    if (!rotate_status.ok()) {
      // Fence half-rotated state, same as MakeRoomForWrite.
      if (bg_error_.ok()) bg_error_ = rotate_status;
      return rotate_status;
    }
    Status close_status = wal_->Close();
    if (!close_status.ok()) {
      if (bg_error_.ok()) bg_error_ = close_status;
      return close_status;
    }
    wal_ = std::make_unique<LogWriter>(std::move(wal_file));
    imm_ = std::move(mem_);
    imm_wal_number_ = wal_number_;
    wal_number_ = new_wal_number;
    mem_ = std::make_shared<MemTable>(options_.arena_block_bytes,
                                      options_.memtable_shards);
    RefreshViewLocked();
    cv_.notify_all();
  }
  while (imm_ != nullptr && bg_error_.ok()) {
    cv_.wait(lock);
  }
  // Deterministic GC point for callers that just released iterators.
  CollectZombiesLocked();
  return bg_error_;
}

Status DB::CompactAll() {
  APM_RETURN_IF_ERROR(Flush());
  std::unique_lock<std::mutex> lock(mu_);
  manual_compaction_requested_ = true;
  compaction_cv_.notify_all();
  // The request drains in-flight jobs first (auto picks are suppressed
  // while it is pending), then one thread claims every table. Completion
  // of each job re-signals both condition variables.
  while ((manual_compaction_requested_ || manual_compaction_running_) &&
         bg_error_.ok()) {
    cv_.wait(lock);
  }
  if (!bg_error_.ok()) {
    // Don't leave a poisoned request suppressing future picks.
    manual_compaction_requested_ = false;
  }
  return bg_error_;
}

Status DB::DiskUsage(uint64_t* bytes) {
  return env_->GetDirectorySize(options_.dir, bytes);
}

Status DB::VerifyIntegrity() {
  // Snapshot the file set and table handles.
  std::vector<std::pair<FileMeta, std::shared_ptr<Table>>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int level = 0; level < versions_->NumLevels(); level++) {
      for (const FileMeta& meta : versions_->files(level)) {
        auto it = tables_.find(meta.number);
        if (it == tables_.end()) {
          return Status::Corruption("manifest lists unopened table " +
                                    std::to_string(meta.number));
        }
        snapshot.emplace_back(meta, it->second);
      }
    }
  }
  for (const auto& [meta, table] : snapshot) {
    ReadOptions read_options;
    read_options.fill_cache = false;
    auto iter = table->NewIterator(read_options);
    uint64_t entries = 0;
    std::string prev_key;
    std::string first_key, last_key;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      std::string key = iter->key().ToString();
      if (entries == 0) {
        first_key = key;
      } else if (key <= prev_key) {
        return Status::Corruption("table " + std::to_string(meta.number) +
                                  " keys out of order");
      }
      prev_key = key;
      last_key = key;
      entries++;
    }
    APM_RETURN_IF_ERROR(iter->status());
    if (entries != meta.num_entries) {
      return Status::Corruption(
          "table " + std::to_string(meta.number) + " has " +
          std::to_string(entries) + " entries, manifest says " +
          std::to_string(meta.num_entries));
    }
    if (entries > 0 &&
        (first_key != meta.smallest || last_key != meta.largest)) {
      return Status::Corruption("table " + std::to_string(meta.number) +
                                " key range disagrees with manifest");
    }
  }
  return Status::OK();
}

DB::Stats DB::GetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.num_flushes = num_flushes_;
  stats.num_compactions = num_compactions_;
  stats.compaction_bytes_read = compaction_bytes_read_;
  stats.compaction_bytes_written =
      compaction_bytes_written_.load(std::memory_order_relaxed);
  stats.stall_slowdown_micros = stall_slowdown_micros_;
  stats.stall_slowdown_writes = stall_slowdown_writes_;
  stats.stall_stop_micros = stall_stop_micros_;
  stats.stall_stop_writes = stall_stop_writes_;
  stats.stall_escape_compactions = stall_escape_compactions_;
  stats.running_compactions = static_cast<uint64_t>(running_compactions_);
  stats.claimed_files = versions_->NumClaimed();
  stats.num_subcompactions = num_subcompactions_;
  stats.zombie_tables = zombies_.size();
  if (rate_limiter_ != nullptr) {
    stats.rate_limited_bytes = rate_limiter_->total_bytes();
    stats.rate_limit_wait_micros = rate_limiter_->total_wait_micros();
  }
  stats.cache_hits = cache_->hits();
  stats.cache_misses = cache_->misses();
  stats.cache_charge = cache_->charge();
  stats.cache_evictions = cache_->evictions();
  stats.cache_inserted_payload_bytes = cache_->inserted_payload_bytes();
  stats.cache_inserted_charged_bytes = cache_->inserted_charged_bytes();
  stats.memtable_bytes = mem_->ApproximateMemoryUsage();
  stats.prefix_bloom_skips =
      prefix_bloom_skips_.load(std::memory_order_relaxed);
  for (const auto& [number, table] : tables_) {
    (void)number;
    if (table->format_version() >= kTableFormatV2) {
      stats.tables_format_v2++;
    } else {
      stats.tables_format_v1++;
    }
    stats.index_bytes += table->index_block_bytes();
  }
  stats.wal_dropped_bytes = wal_dropped_bytes_;
  stats.wal_replayed_records = wal_replayed_records_;
  stats.write_groups = write_groups_;
  stats.grouped_writes = grouped_writes_;
  stats.parallel_apply_groups = parallel_apply_groups_;
  stats.pending_writers = writers_.size();
  for (int level = 0; level < versions_->NumLevels(); level++) {
    stats.files_per_level.push_back(versions_->NumFiles(level));
    stats.bytes_per_level.push_back(versions_->LevelBytes(level));
    uint64_t hits = 0, misses = 0;
    for (const auto& meta : versions_->files(level)) {
      auto it = tables_.find(meta.number);
      if (it == tables_.end()) continue;
      hits += it->second->cache_hits();
      misses += it->second->cache_misses();
    }
    stats.cache_hits_per_level.push_back(hits);
    stats.cache_misses_per_level.push_back(misses);
    stats.compactions_per_level.push_back(compactions_per_level_[level]);
    stats.compaction_read_per_level.push_back(
        compaction_read_per_level_[level]);
    stats.compaction_written_per_level.push_back(
        compaction_written_per_level_[level].load(std::memory_order_relaxed));
  }
  return stats;
}

bool DB::GetProperty(const Slice& property, std::string* value) {
  value->clear();
  if (property == Slice("lsm.cache-charge")) {
    *value = std::to_string(cache_->charge());
    return true;
  }
  if (property == Slice("lsm.cache-stats")) {
    Stats stats = GetStats();
    char line[160];
    snprintf(line, sizeof(line),
             "block cache: %d shards, charge %llu / capacity %llu, "
             "hits %llu, misses %llu, evictions %llu\n",
             cache_->num_shards(),
             static_cast<unsigned long long>(stats.cache_charge),
             static_cast<unsigned long long>(cache_->capacity()),
             static_cast<unsigned long long>(stats.cache_hits),
             static_cast<unsigned long long>(stats.cache_misses),
             static_cast<unsigned long long>(stats.cache_evictions));
    value->append(line);
    const uint64_t charged = stats.cache_inserted_charged_bytes;
    snprintf(line, sizeof(line),
             "charge accuracy: payload %llu / charged %llu inserted bytes "
             "(ratio %.3f)\n",
             static_cast<unsigned long long>(
                 stats.cache_inserted_payload_bytes),
             static_cast<unsigned long long>(charged),
             charged > 0 ? static_cast<double>(
                               stats.cache_inserted_payload_bytes) /
                               static_cast<double>(charged)
                         : 1.0);
    value->append(line);
    for (size_t level = 0; level < stats.cache_hits_per_level.size();
         level++) {
      const uint64_t hits = stats.cache_hits_per_level[level];
      const uint64_t misses = stats.cache_misses_per_level[level];
      if (stats.files_per_level[level] == 0 && hits == 0 && misses == 0) {
        continue;
      }
      const uint64_t total = hits + misses;
      snprintf(line, sizeof(line),
               "L%zu: %d files, hits %llu, misses %llu, hit_rate %.3f\n",
               level, stats.files_per_level[level],
               static_cast<unsigned long long>(hits),
               static_cast<unsigned long long>(misses),
               total > 0 ? static_cast<double>(hits) / total : 0.0);
      value->append(line);
    }
    return true;
  }
  if (property == Slice("lsm.compaction-stats")) {
    Stats stats = GetStats();
    char line[200];
    snprintf(line, sizeof(line),
             "compaction: %d threads, %llu running, %llu claimed inputs, "
             "%llu zombie tables, %llu jobs (%llu subcompactions)\n",
             std::max(1, options_.compaction_threads),
             static_cast<unsigned long long>(stats.running_compactions),
             static_cast<unsigned long long>(stats.claimed_files),
             static_cast<unsigned long long>(stats.zombie_tables),
             static_cast<unsigned long long>(stats.num_compactions),
             static_cast<unsigned long long>(stats.num_subcompactions));
    value->append(line);
    snprintf(line, sizeof(line),
             "stalls: slowdown %llu writes / %llu us, stop %llu writes / "
             "%llu us\n",
             static_cast<unsigned long long>(stats.stall_slowdown_writes),
             static_cast<unsigned long long>(stats.stall_slowdown_micros),
             static_cast<unsigned long long>(stats.stall_stop_writes),
             static_cast<unsigned long long>(stats.stall_stop_micros));
    value->append(line);
    if (rate_limiter_ != nullptr) {
      snprintf(line, sizeof(line),
               "rate limit: %llu bytes/s, %llu bytes through, wait %llu us\n",
               static_cast<unsigned long long>(rate_limiter_->bytes_per_sec()),
               static_cast<unsigned long long>(stats.rate_limited_bytes),
               static_cast<unsigned long long>(stats.rate_limit_wait_micros));
      value->append(line);
    }
    for (size_t level = 0; level < stats.files_per_level.size(); level++) {
      if (stats.files_per_level[level] == 0 &&
          stats.compactions_per_level[level] == 0 &&
          stats.compaction_written_per_level[level] == 0) {
        continue;
      }
      snprintf(line, sizeof(line),
               "L%zu: %d files / %llu bytes, %llu compactions, read %llu, "
               "written %llu\n",
               level, stats.files_per_level[level],
               static_cast<unsigned long long>(stats.bytes_per_level[level]),
               static_cast<unsigned long long>(
                   stats.compactions_per_level[level]),
               static_cast<unsigned long long>(
                   stats.compaction_read_per_level[level]),
               static_cast<unsigned long long>(
                   stats.compaction_written_per_level[level]));
      value->append(line);
    }
    return true;
  }
  return false;
}

}  // namespace apmbench::lsm
