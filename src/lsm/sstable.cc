#include "lsm/sstable.h"

#include <algorithm>

#include "common/coding.h"
#include "common/compression.h"
#include "common/crc32.h"
#include "lsm/bloom.h"

namespace apmbench::lsm {

namespace {

constexpr uint64_t kTableMagic = 0x41504d424e434831ull;  // "APMBNCH1"
constexpr size_t kFooterSize = 8 + 4 + 8 + 4 + 8;

constexpr uint8_t kFlagTombstone = 0x1;

void AppendEntry(std::string* dst, const Slice& key, const Slice& value,
                 uint64_t seq, bool tombstone) {
  PutVarint32(dst, static_cast<uint32_t>(key.size()));
  dst->append(key.data(), key.size());
  dst->push_back(static_cast<char>(tombstone ? kFlagTombstone : 0));
  PutVarint64(dst, seq);
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

}  // namespace

bool BlockParser::Next() {
  if (input_.empty() || corrupt_) return false;
  uint32_t klen;
  if (!GetVarint32(&input_, &klen) || input_.size() < klen + 1) {
    corrupt_ = true;
    return false;
  }
  key_ = Slice(input_.data(), klen);
  input_.RemovePrefix(klen);
  uint8_t flags = static_cast<uint8_t>(input_[0]);
  input_.RemovePrefix(1);
  tombstone_ = (flags & kFlagTombstone) != 0;
  if (!GetVarint64(&input_, &seq_)) {
    corrupt_ = true;
    return false;
  }
  uint32_t vlen;
  if (!GetVarint32(&input_, &vlen) || input_.size() < vlen) {
    corrupt_ = true;
    return false;
  }
  value_ = Slice(input_.data(), vlen);
  input_.RemovePrefix(vlen);
  return true;
}

TableBuilder::TableBuilder(const Options& options, Env* env, std::string path)
    : options_(options), env_(env), path_(std::move(path)) {
  if (options_.bloom_bits_per_key > 0) {
    filter_ = std::make_unique<BloomFilterBuilder>(options_.bloom_bits_per_key);
  }
}

TableBuilder::~TableBuilder() = default;

Status TableBuilder::Open() { return env_->NewWritableFile(path_, &file_); }

Status TableBuilder::Add(const Slice& key, const Slice& value, uint64_t seq,
                         bool tombstone) {
  if (num_entries_ == 0) {
    smallest_key_ = key.ToString();
  }
  largest_key_ = key.ToString();
  AppendEntry(&data_block_, key, value, seq, tombstone);
  if (filter_ != nullptr) filter_->AddKey(key);
  num_entries_++;
  if (data_block_.size() >= options_.block_size) {
    return FlushDataBlock();
  }
  return Status::OK();
}

Status TableBuilder::FlushDataBlock() {
  if (data_block_.empty()) return Status::OK();
  // Optionally compress; fall back to the raw block when compression
  // does not pay.
  const std::string* payload = &data_block_;
  CompressionType type = CompressionType::kNone;
  std::string compressed;
  if (options_.compression == CompressionType::kLz) {
    lz::Compress(Slice(data_block_), &compressed);
    if (compressed.size() < data_block_.size()) {
      payload = &compressed;
      type = CompressionType::kLz;
    }
  }
  // Trailer: 1-byte compression type + crc32c over payload+type.
  std::string trailer;
  trailer.push_back(static_cast<char>(type));
  uint32_t crc = Crc32cExtend(Crc32c(payload->data(), payload->size()),
                              trailer.data(), 1);
  PutFixed32(&trailer, MaskCrc(crc));
  APM_RETURN_IF_ERROR(file_->Append(*payload));
  APM_RETURN_IF_ERROR(file_->Append(trailer));

  uint64_t span = payload->size() + trailer.size();
  PutVarint32(&index_block_, static_cast<uint32_t>(largest_key_.size()));
  index_block_.append(largest_key_);
  PutFixed64(&index_block_, offset_);
  PutFixed32(&index_block_, static_cast<uint32_t>(span));

  offset_ += span;
  data_block_.clear();
  return Status::OK();
}

Status TableBuilder::Finish() {
  APM_RETURN_IF_ERROR(FlushDataBlock());

  uint64_t filter_offset = offset_;
  std::string filter_data;
  if (filter_ != nullptr) {
    filter_data = filter_->Finish();
    APM_RETURN_IF_ERROR(file_->Append(filter_data));
    offset_ += filter_data.size();
  }

  uint64_t index_offset = offset_;
  APM_RETURN_IF_ERROR(file_->Append(index_block_));
  offset_ += index_block_.size();

  std::string footer;
  PutFixed64(&footer, index_offset);
  PutFixed32(&footer, static_cast<uint32_t>(index_block_.size()));
  PutFixed64(&footer, filter_offset);
  PutFixed32(&footer, static_cast<uint32_t>(filter_data.size()));
  PutFixed64(&footer, kTableMagic);
  APM_RETURN_IF_ERROR(file_->Append(footer));
  offset_ += footer.size();

  APM_RETURN_IF_ERROR(file_->Sync());
  APM_RETURN_IF_ERROR(file_->Close());
  file_size_ = offset_;
  finished_ = true;
  return Status::OK();
}

void TableBuilder::Abandon() {
  if (file_ != nullptr) {
    file_->Close();
    file_.reset();
  }
  env_->RemoveFile(path_);
}

Status Table::Open(const Options& options, Env* env, const std::string& path,
                   uint64_t file_number, BlockCache* cache,
                   std::unique_ptr<Table>* table) {
  std::unique_ptr<Table> t(new Table());
  t->options_ = options;
  t->file_number_ = file_number;
  t->cache_ = cache;
  APM_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &t->file_));
  t->file_size_ = t->file_->Size();
  if (t->file_size_ < kFooterSize) {
    return Status::Corruption("table too short: " + path);
  }

  char footer_buf[kFooterSize];
  Slice footer;
  APM_RETURN_IF_ERROR(t->file_->Read(t->file_size_ - kFooterSize, kFooterSize,
                                     &footer, footer_buf));
  if (footer.size() != kFooterSize) {
    return Status::Corruption("short footer read: " + path);
  }
  uint64_t index_offset, filter_offset, magic;
  uint32_t index_size, filter_size;
  Slice f = footer;
  GetFixed64(&f, &index_offset);
  GetFixed32(&f, &index_size);
  GetFixed64(&f, &filter_offset);
  GetFixed32(&f, &filter_size);
  GetFixed64(&f, &magic);
  if (magic != kTableMagic) {
    return Status::Corruption("bad table magic: " + path);
  }

  // Load the index block and pin it in the cache for the table's
  // lifetime: the IndexEntry last_key slices point into the pinned bytes,
  // so the table keeps no private copy and the block is charged against
  // the cache budget exactly once.
  std::string index_data(index_size, '\0');
  Slice index_slice;
  APM_RETURN_IF_ERROR(
      t->file_->Read(index_offset, index_size, &index_slice, index_data.data()));
  if (index_slice.size() != index_size) {
    return Status::Corruption("short index read: " + path);
  }
  if (index_slice.data() != index_data.data()) {
    index_data.assign(index_slice.data(), index_slice.size());
  }
  t->index_block_ =
      cache != nullptr
          ? cache->Insert(file_number, index_offset, std::move(index_data))
          : BlockCache::Wrap(std::move(index_data));
  Slice in(*t->index_block_);
  while (!in.empty()) {
    uint32_t klen;
    if (!GetVarint32(&in, &klen) || in.size() < klen + 12) {
      return Status::Corruption("bad index entry: " + path);
    }
    IndexEntry entry;
    entry.last_key = Slice(in.data(), klen);
    in.RemovePrefix(klen);
    GetFixed64(&in, &entry.offset);
    GetFixed32(&in, &entry.size);
    t->index_.push_back(entry);
  }

  // Load the bloom filter, pinned and charged the same way.
  if (filter_size > 0) {
    std::string filter_data(filter_size, '\0');
    Slice filter_slice;
    APM_RETURN_IF_ERROR(t->file_->Read(filter_offset, filter_size,
                                       &filter_slice, filter_data.data()));
    if (filter_slice.size() != filter_size) {
      return Status::Corruption("short filter read: " + path);
    }
    if (filter_slice.data() != filter_data.data()) {
      filter_data.assign(filter_slice.data(), filter_slice.size());
    }
    t->filter_block_ =
        cache != nullptr
            ? cache->Insert(file_number, filter_offset, std::move(filter_data))
            : BlockCache::Wrap(std::move(filter_data));
    t->filter_ = Slice(*t->filter_block_);
  }

  *table = std::move(t);
  return Status::OK();
}

Status Table::ReadBlock(uint64_t offset, uint32_t size,
                        BlockCache::BlockHandle* block, bool fill_cache) {
  if (cache_ != nullptr) {
    *block = cache_->Lookup(file_number_, offset);
    if (*block != nullptr) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  if (size < 5) return Status::Corruption("block too small");
  std::string raw(size, '\0');
  Slice result;
  APM_RETURN_IF_ERROR(file_->Read(offset, size, &result, raw.data()));
  if (result.size() != size) return Status::Corruption("short block read");
  uint32_t stored_crc = UnmaskCrc(DecodeFixed32(result.data() + size - 4));
  if (stored_crc != Crc32c(result.data(), size - 4)) {
    return Status::Corruption("block checksum mismatch");
  }
  auto type = static_cast<CompressionType>(
      static_cast<uint8_t>(result.data()[size - 5]));
  std::string data;
  if (type == CompressionType::kLz) {
    if (!lz::Uncompress(Slice(result.data(), size - 5), &data)) {
      return Status::Corruption("block decompression failed");
    }
  } else if (type == CompressionType::kNone) {
    data.assign(result.data(), size - 5);
  } else {
    return Status::Corruption("unknown block compression type");
  }
  // Inserting returns the entry already pinned, so concurrent readers of
  // a hot block share the cache-owned bytes with no extra copy.
  *block = cache_ != nullptr && fill_cache
               ? cache_->Insert(file_number_, offset, std::move(data))
               : BlockCache::Wrap(std::move(data));
  return Status::OK();
}

int Table::FindBlock(const Slice& key) const {
  // Binary search for the first block whose last_key >= key.
  int lo = 0;
  int hi = static_cast<int>(index_.size()) - 1;
  int result = -1;
  while (lo <= hi) {
    int mid = lo + (hi - lo) / 2;
    if (Slice(index_[mid].last_key).Compare(key) >= 0) {
      result = mid;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  return result;
}

Status Table::Get(const ReadOptions& read_options, const Slice& key,
                  GetResult* result, std::string* value, uint64_t* seq) {
  *result = GetResult::kAbsent;
  if (!filter_.empty() && !BloomFilterMayMatch(filter_, key)) {
    return Status::OK();
  }
  int block_index = FindBlock(key);
  if (block_index < 0) return Status::OK();

  BlockCache::BlockHandle block;
  APM_RETURN_IF_ERROR(ReadBlock(index_[block_index].offset,
                                index_[block_index].size, &block,
                                read_options.fill_cache));
  Slice block_contents(*block);
  BlockParser parser(block_contents);
  while (parser.Next()) {
    int cmp = parser.key().Compare(key);
    if (cmp == 0) {
      if (seq != nullptr) *seq = parser.seq();
      if (parser.tombstone()) {
        *result = GetResult::kDeleted;
      } else {
        *result = GetResult::kFound;
        value->assign(parser.value().data(), parser.value().size());
      }
      return Status::OK();
    }
    if (cmp > 0) break;
  }
  if (parser.corrupt()) return Status::Corruption("corrupt data block");
  return Status::OK();
}

/// Iterator walking a table's blocks in order.
class TableIterator final : public Iterator {
 public:
  TableIterator(Table* table, const ReadOptions& read_options)
      : table_(table), read_options_(read_options) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    block_index_ = -1;
    valid_ = false;
    NextBlock();
  }

  void Seek(const Slice& target) override {
    valid_ = false;
    int idx = table_->FindBlock(target);
    if (idx < 0) return;
    if (!LoadBlock(idx)) return;
    // Advance within the block to the first key >= target.
    while (parser_->Next()) {
      if (parser_->key().Compare(target) >= 0) {
        valid_ = true;
        return;
      }
    }
    // Target is past this block's last key; move on.
    NextBlock();
  }

  void Next() override {
    if (!valid_) return;
    if (parser_->Next()) return;
    if (parser_->corrupt()) {
      status_ = Status::Corruption("corrupt data block");
      valid_ = false;
      return;
    }
    NextBlock();
  }

  Slice key() const override { return parser_->key(); }
  Slice value() const override { return parser_->value(); }
  bool IsTombstone() const override { return parser_->tombstone(); }
  uint64_t seq() const override { return parser_->seq(); }
  Status status() const override { return status_; }

 private:
  bool LoadBlock(int index) {
    block_index_ = index;
    Status s = table_->ReadBlock(table_->index_[index].offset,
                                 table_->index_[index].size, &block_,
                                 read_options_.fill_cache);
    if (!s.ok()) {
      status_ = s;
      return false;
    }
    parser_ = std::make_unique<BlockParser>(Slice(*block_));
    return true;
  }

  void NextBlock() {
    for (;;) {
      int next = block_index_ + 1;
      if (next >= static_cast<int>(table_->index_.size())) {
        valid_ = false;
        return;
      }
      if (!LoadBlock(next)) {
        valid_ = false;
        return;
      }
      if (parser_->Next()) {
        valid_ = true;
        return;
      }
    }
  }

  Table* table_;
  ReadOptions read_options_;
  int block_index_ = -1;
  BlockCache::BlockHandle block_;
  std::unique_ptr<BlockParser> parser_;
  bool valid_ = false;
  Status status_;
};

std::unique_ptr<Iterator> Table::NewIterator(const ReadOptions& read_options) {
  return std::make_unique<TableIterator>(this, read_options);
}

}  // namespace apmbench::lsm
