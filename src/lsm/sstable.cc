#include "lsm/sstable.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/coding.h"
#include "common/compression.h"
#include "common/crc32.h"
#include "lsm/bloom.h"

namespace apmbench::lsm {

namespace {

constexpr uint64_t kTableMagicV1 = 0x41504d424e434831ull;  // "APMBNCH1"
constexpr uint64_t kTableMagicV2 = 0x41504d424e434832ull;  // "APMBNCH2"
constexpr size_t kFooterV1Size = 8 + 4 + 8 + 4 + 8;
constexpr size_t kFooterV2Size = 8 + 4 + 8 + 4 + 8 + 4 + 4 + 4 + 8;

constexpr uint8_t kFlagTombstone = 0x1;

void AppendEntryV1(std::string* dst, const Slice& key, const Slice& value,
                   uint64_t seq, bool tombstone) {
  PutVarint32(dst, static_cast<uint32_t>(key.size()));
  dst->append(key.data(), key.size());
  dst->push_back(static_cast<char>(tombstone ? kFlagTombstone : 0));
  PutVarint64(dst, seq);
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

size_t SharedPrefixLength(const Slice& a, const Slice& b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) i++;
  return i;
}

/// Decodes the footer from `tail`, the last min(file_size, kFooterV2Size)
/// bytes of the file, dispatching on the trailing magic.
Status ParseFooter(const Slice& tail, const std::string& path,
                   TableFooter* out) {
  if (tail.size() < 8) {
    return Status::Corruption("table too short: " + path);
  }
  const uint64_t magic = DecodeFixed64(tail.data() + tail.size() - 8);
  if (magic == kTableMagicV1) {
    if (tail.size() < kFooterV1Size) {
      return Status::Corruption("truncated v1 footer: " + path);
    }
    Slice f(tail.data() + tail.size() - kFooterV1Size, kFooterV1Size);
    out->format_version = kTableFormatV1;
    GetFixed64(&f, &out->index_offset);
    GetFixed32(&f, &out->index_size);
    GetFixed64(&f, &out->filter_offset);
    GetFixed32(&f, &out->filter_size);
    out->prefix_filter_offset = 0;
    out->prefix_filter_size = 0;
    out->prefix_bloom_length = 0;
    return Status::OK();
  }
  if (magic == kTableMagicV2) {
    if (tail.size() < kFooterV2Size) {
      return Status::Corruption("truncated v2 footer: " + path);
    }
    Slice f(tail.data() + tail.size() - kFooterV2Size, kFooterV2Size);
    GetFixed64(&f, &out->index_offset);
    GetFixed32(&f, &out->index_size);
    GetFixed64(&f, &out->filter_offset);
    GetFixed32(&f, &out->filter_size);
    GetFixed64(&f, &out->prefix_filter_offset);
    GetFixed32(&f, &out->prefix_filter_size);
    GetFixed32(&f, &out->prefix_bloom_length);
    GetFixed32(&f, &out->format_version);
    if (out->format_version < kTableFormatV2 ||
        out->format_version > kMaxSupportedTableFormat) {
      return Status::Corruption("unsupported table format version " +
                                std::to_string(out->format_version) + ": " +
                                path);
    }
    return Status::OK();
  }
  return Status::Corruption("bad table magic: " + path);
}

Status ReadFooterFrom(RandomAccessFile* file, uint64_t file_size,
                      const std::string& path, TableFooter* out) {
  const size_t want =
      static_cast<size_t>(std::min<uint64_t>(file_size, kFooterV2Size));
  char buf[kFooterV2Size];
  Slice tail;
  APM_RETURN_IF_ERROR(file->Read(file_size - want, want, &tail, buf));
  if (tail.size() != want) {
    return Status::Corruption("short footer read: " + path);
  }
  return ParseFooter(tail, path, out);
}

}  // namespace

Status ReadTableFooter(Env* env, const std::string& path,
                       TableFooter* footer) {
  std::unique_ptr<RandomAccessFile> file;
  APM_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &file));
  return ReadFooterFrom(file.get(), file->Size(), path, footer);
}

// ---------------------------------------------------------------------------
// BlockBuilder (format v2)

BlockBuilder::BlockBuilder(int restart_interval)
    : restart_interval_(restart_interval < 1 ? 1 : restart_interval) {}

void BlockBuilder::Add(const Slice& key, const Slice& payload) {
  assert(!finished_);
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    shared = SharedPrefixLength(Slice(last_key_), key);
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  const size_t non_shared = key.size() - shared;
  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(payload.size()));
  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(payload.data(), payload.size());
  last_key_.resize(shared);
  last_key_.append(key.data() + shared, non_shared);
  counter_++;
  num_entries_++;
}

Slice BlockBuilder::Finish() {
  assert(!finished_);
  for (uint32_t restart : restarts_) PutFixed32(&buffer_, restart);
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  finished_ = true;
  return Slice(buffer_);
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.assign(1, 0);
  counter_ = 0;
  num_entries_ = 0;
  last_key_.clear();
  finished_ = false;
}

// ---------------------------------------------------------------------------
// BlockCursor

BlockCursor::BlockCursor(Slice block, uint32_t format_version,
                         bool data_block)
    : block_(block), format_(format_version), data_block_(data_block) {
  if (format_ >= kTableFormatV2) {
    if (block_.size() < 8) {  // restart offset 0 + count
      MarkCorrupt();
      return;
    }
    num_restarts_ = DecodeFixed32(block_.data() + block_.size() - 4);
    const uint64_t restart_bytes = 4ull * num_restarts_ + 4;
    if (num_restarts_ == 0 || restart_bytes > block_.size()) {
      MarkCorrupt();
      return;
    }
    data_end_ = block_.size() - static_cast<size_t>(restart_bytes);
  }
}

void BlockCursor::MarkCorrupt() {
  corrupt_ = true;
  valid_ = false;
}

bool BlockCursor::ParseV1Entry() {
  if (remaining_.empty() || corrupt_) {
    valid_ = false;
    return false;
  }
  uint32_t klen;
  if (!GetVarint32(&remaining_, &klen) || remaining_.size() < klen + 1) {
    MarkCorrupt();
    return false;
  }
  key_ = Slice(remaining_.data(), klen);
  remaining_.RemovePrefix(klen);
  const uint8_t flags = static_cast<uint8_t>(remaining_[0]);
  remaining_.RemovePrefix(1);
  tombstone_ = (flags & kFlagTombstone) != 0;
  if (!GetVarint64(&remaining_, &seq_)) {
    MarkCorrupt();
    return false;
  }
  uint32_t vlen;
  if (!GetVarint32(&remaining_, &vlen) || remaining_.size() < vlen) {
    MarkCorrupt();
    return false;
  }
  value_ = Slice(remaining_.data(), vlen);
  remaining_.RemovePrefix(vlen);
  payload_ = Slice();
  valid_ = true;
  return true;
}

bool BlockCursor::DecodeDataPayload() {
  const char* p = payload_.data();
  const char* limit = p + payload_.size();
  if (payload_.size() < 2) return false;
  tombstone_ = (static_cast<uint8_t>(*p) & kFlagTombstone) != 0;
  p++;
  p = GetVarint64Ptr(p, limit, &seq_);
  if (p == nullptr) return false;
  value_ = Slice(p, static_cast<size_t>(limit - p));
  return true;
}

bool BlockCursor::ParseV2EntryAt(size_t offset) {
  if (corrupt_) return false;
  if (offset >= data_end_) {
    valid_ = false;
    return false;
  }
  const char* base = block_.data();
  const char* p = base + offset;
  const char* limit = base + data_end_;
  uint32_t shared, non_shared, plen;
  p = GetVarint32Ptr(p, limit, &shared);
  if (p != nullptr) p = GetVarint32Ptr(p, limit, &non_shared);
  if (p != nullptr) p = GetVarint32Ptr(p, limit, &plen);
  if (p == nullptr || shared > key_buf_.size() ||
      static_cast<size_t>(limit - p) < static_cast<size_t>(non_shared) + plen) {
    MarkCorrupt();
    return false;
  }
  key_buf_.resize(shared);
  key_buf_.append(p, non_shared);
  p += non_shared;
  payload_ = Slice(p, plen);
  next_offset_ = static_cast<size_t>(p + plen - base);
  key_ = Slice(key_buf_);
  if (data_block_ && !DecodeDataPayload()) {
    MarkCorrupt();
    return false;
  }
  valid_ = true;
  return true;
}

bool BlockCursor::SeekToFirst() {
  if (corrupt_) return false;
  if (format_ >= kTableFormatV2) {
    key_buf_.clear();
    return ParseV2EntryAt(0);
  }
  remaining_ = block_;
  return ParseV1Entry();
}

bool BlockCursor::Next() {
  if (!valid_) return false;
  if (format_ >= kTableFormatV2) return ParseV2EntryAt(next_offset_);
  return ParseV1Entry();
}

uint32_t BlockCursor::RestartFloor(const Slice& target) {
  // Largest restart whose (full) key is < target; restart entries always
  // store shared = 0, so their keys decode without predecessor state.
  uint32_t lo = 0;
  uint32_t hi = num_restarts_ - 1;
  while (lo < hi && !corrupt_) {
    const uint32_t mid = lo + (hi - lo + 1) / 2;
    const size_t offset =
        DecodeFixed32(block_.data() + data_end_ + 4 * static_cast<size_t>(mid));
    const char* p = block_.data() + offset;
    const char* limit = block_.data() + data_end_;
    uint32_t shared, non_shared, plen;
    p = GetVarint32Ptr(p, limit, &shared);
    if (p != nullptr) p = GetVarint32Ptr(p, limit, &non_shared);
    if (p != nullptr) p = GetVarint32Ptr(p, limit, &plen);
    if (p == nullptr || shared != 0 ||
        static_cast<size_t>(limit - p) < non_shared || offset >= data_end_) {
      MarkCorrupt();
      return 0;
    }
    if (Slice(p, non_shared).Compare(target) < 0) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

bool BlockCursor::Seek(const Slice& target) {
  if (corrupt_) return false;
  if (format_ >= kTableFormatV2) {
    if (data_end_ == 0) {
      valid_ = false;
      return false;
    }
    const uint32_t restart = RestartFloor(target);
    if (corrupt_) return false;
    key_buf_.clear();
    const size_t offset = DecodeFixed32(block_.data() + data_end_ +
                                        4 * static_cast<size_t>(restart));
    if (!ParseV2EntryAt(offset)) return false;
    while (valid_ && key_.Compare(target) < 0) Next();
    return valid_;
  }
  if (!SeekToFirst()) return false;
  while (valid_ && key_.Compare(target) < 0) Next();
  return valid_;
}

bool BlockCursor::SeekToLast() {
  if (corrupt_) return false;
  if (format_ >= kTableFormatV2) {
    if (data_end_ == 0) {
      valid_ = false;
      return false;
    }
    key_buf_.clear();
    const size_t offset =
        DecodeFixed32(block_.data() + data_end_ +
                      4 * static_cast<size_t>(num_restarts_ - 1));
    if (!ParseV2EntryAt(offset)) return false;
    while (next_offset_ < data_end_) {
      if (!ParseV2EntryAt(next_offset_)) return false;
    }
    return valid_;
  }
  // v1: linear walk, keeping the last decoded entry.
  if (!SeekToFirst()) return false;
  for (;;) {
    Slice last_key = key_;
    Slice last_value = value_;
    uint64_t last_seq = seq_;
    bool last_tombstone = tombstone_;
    if (!ParseV1Entry()) {
      if (corrupt_) return false;
      key_ = last_key;
      value_ = last_value;
      seq_ = last_seq;
      tombstone_ = last_tombstone;
      valid_ = true;
      return true;
    }
  }
}

// ---------------------------------------------------------------------------
// TableBuilder

TableBuilder::TableBuilder(const Options& options, Env* env, std::string path)
    : options_(options),
      env_(env),
      path_(std::move(path)),
      format_version_(options.format_version <= kTableFormatV1
                          ? kTableFormatV1
                          : kTableFormatV2) {
  if (options_.bloom_bits_per_key > 0) {
    filter_ = std::make_unique<BloomFilterBuilder>(options_.bloom_bits_per_key);
  }
  if (format_version_ >= kTableFormatV2) {
    const int restart_interval = std::max(1, options_.block_restart_interval);
    data_builder_ = std::make_unique<BlockBuilder>(restart_interval);
    index_builder_ = std::make_unique<BlockBuilder>(restart_interval);
    if (options_.prefix_bloom_length > 0 && options_.bloom_bits_per_key > 0) {
      prefix_filter_ = std::make_unique<PrefixBloomBuilder>(
          options_.bloom_bits_per_key, options_.prefix_bloom_length);
    }
  }
}

TableBuilder::~TableBuilder() = default;

Status TableBuilder::Open() { return env_->NewWritableFile(path_, &file_); }

uint64_t TableBuilder::CurrentSizeEstimate() const {
  if (format_version_ >= kTableFormatV2) {
    return offset_ + (data_builder_->empty()
                          ? 0
                          : data_builder_->CurrentSizeEstimate());
  }
  return offset_ + data_block_.size();
}

Status TableBuilder::Add(const Slice& key, const Slice& value, uint64_t seq,
                         bool tombstone) {
  if (num_entries_ == 0) {
    smallest_key_ = key.ToString();
  }
  largest_key_ = key.ToString();
  if (format_version_ >= kTableFormatV2) {
    payload_scratch_.clear();
    payload_scratch_.push_back(
        static_cast<char>(tombstone ? kFlagTombstone : 0));
    PutVarint64(&payload_scratch_, seq);
    payload_scratch_.append(value.data(), value.size());
    data_builder_->Add(key, Slice(payload_scratch_));
    if (prefix_filter_ != nullptr) prefix_filter_->AddKey(key);
  } else {
    AppendEntryV1(&data_block_, key, value, seq, tombstone);
  }
  if (filter_ != nullptr) filter_->AddKey(key);
  num_entries_++;
  const size_t pending = format_version_ >= kTableFormatV2
                             ? data_builder_->CurrentSizeEstimate()
                             : data_block_.size();
  if (pending >= options_.block_size) {
    return FlushDataBlock();
  }
  return Status::OK();
}

Status TableBuilder::WriteBlock(const Slice& raw, uint64_t* span) {
  // Optionally compress; fall back to the raw block when compression
  // does not pay.
  Slice payload = raw;
  CompressionType type = CompressionType::kNone;
  std::string compressed;
  if (options_.compression == CompressionType::kLz) {
    lz::Compress(raw, &compressed);
    if (compressed.size() < raw.size()) {
      payload = Slice(compressed);
      type = CompressionType::kLz;
    }
  }
  // Trailer: 1-byte compression type + crc32c over payload+type.
  std::string trailer;
  trailer.push_back(static_cast<char>(type));
  uint32_t crc = Crc32cExtend(Crc32c(payload.data(), payload.size()),
                              trailer.data(), 1);
  PutFixed32(&trailer, MaskCrc(crc));
  APM_RETURN_IF_ERROR(file_->Append(payload));
  APM_RETURN_IF_ERROR(file_->Append(trailer));
  *span = payload.size() + trailer.size();
  return Status::OK();
}

Status TableBuilder::FlushDataBlock() {
  const bool v2 = format_version_ >= kTableFormatV2;
  if (v2 ? data_builder_->empty() : data_block_.empty()) return Status::OK();

  const Slice raw = v2 ? data_builder_->Finish() : Slice(data_block_);
  uint64_t span = 0;
  APM_RETURN_IF_ERROR(WriteBlock(raw, &span));

  if (v2) {
    char handle[12];
    EncodeFixed64(handle, offset_);
    EncodeFixed32(handle + 8, static_cast<uint32_t>(span));
    index_builder_->Add(Slice(largest_key_), Slice(handle, sizeof(handle)));
    data_builder_->Reset();
  } else {
    PutVarint32(&index_block_, static_cast<uint32_t>(largest_key_.size()));
    index_block_.append(largest_key_);
    PutFixed64(&index_block_, offset_);
    PutFixed32(&index_block_, static_cast<uint32_t>(span));
    data_block_.clear();
  }
  offset_ += span;
  return Status::OK();
}

Status TableBuilder::Finish() {
  APM_RETURN_IF_ERROR(FlushDataBlock());
  const bool v2 = format_version_ >= kTableFormatV2;

  uint64_t filter_offset = offset_;
  std::string filter_data;
  if (filter_ != nullptr) {
    filter_data = filter_->Finish();
    APM_RETURN_IF_ERROR(file_->Append(filter_data));
    offset_ += filter_data.size();
  }

  uint64_t prefix_filter_offset = offset_;
  std::string prefix_filter_data;
  uint32_t prefix_bloom_length = 0;
  if (v2 && prefix_filter_ != nullptr && prefix_filter_->NumPrefixes() > 0) {
    prefix_filter_data = prefix_filter_->Finish();
    APM_RETURN_IF_ERROR(file_->Append(prefix_filter_data));
    offset_ += prefix_filter_data.size();
    prefix_bloom_length = static_cast<uint32_t>(options_.prefix_bloom_length);
  }

  uint64_t index_offset = offset_;
  uint64_t index_size = 0;
  if (v2) {
    const Slice raw = index_builder_->Finish();
    APM_RETURN_IF_ERROR(file_->Append(raw));
    index_size = raw.size();
  } else {
    APM_RETURN_IF_ERROR(file_->Append(index_block_));
    index_size = index_block_.size();
  }
  offset_ += index_size;

  std::string footer;
  PutFixed64(&footer, index_offset);
  PutFixed32(&footer, static_cast<uint32_t>(index_size));
  PutFixed64(&footer, filter_offset);
  PutFixed32(&footer, static_cast<uint32_t>(filter_data.size()));
  if (v2) {
    PutFixed64(&footer, prefix_filter_offset);
    PutFixed32(&footer, static_cast<uint32_t>(prefix_filter_data.size()));
    PutFixed32(&footer, prefix_bloom_length);
    PutFixed32(&footer, format_version_);
    PutFixed64(&footer, kTableMagicV2);
  } else {
    PutFixed64(&footer, kTableMagicV1);
  }
  APM_RETURN_IF_ERROR(file_->Append(footer));
  offset_ += footer.size();

  APM_RETURN_IF_ERROR(file_->Sync());
  APM_RETURN_IF_ERROR(file_->Close());
  file_size_ = offset_;
  finished_ = true;
  return Status::OK();
}

void TableBuilder::Abandon() {
  if (file_ != nullptr) {
    file_->Close();
    file_.reset();
  }
  env_->RemoveFile(path_);
}

// ---------------------------------------------------------------------------
// Table

Status Table::Open(const Options& options, Env* env, const std::string& path,
                   uint64_t file_number, BlockCache* cache,
                   std::unique_ptr<Table>* table) {
  std::unique_ptr<Table> t(new Table());
  t->options_ = options;
  t->file_number_ = file_number;
  t->cache_ = cache;
  APM_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &t->file_));
  t->file_size_ = t->file_->Size();
  APM_RETURN_IF_ERROR(
      ReadFooterFrom(t->file_.get(), t->file_size_, path, &t->footer_));

  // Load the index block. Both versions read the raw bytes once; what is
  // retained differs (see the class comment).
  const uint32_t index_size = t->footer_.index_size;
  std::string index_data(index_size, '\0');
  Slice index_slice;
  APM_RETURN_IF_ERROR(t->file_->Read(t->footer_.index_offset, index_size,
                                     &index_slice, index_data.data()));
  if (index_slice.size() != index_size) {
    return Status::Corruption("short index read: " + path);
  }
  if (index_slice.data() != index_data.data()) {
    index_data.assign(index_slice.data(), index_slice.size());
  }

  if (t->footer_.format_version == kTableFormatV1) {
    // v1: pin the block in the cache for the table's lifetime; the
    // IndexEntry last_key slices point into the pinned bytes, so the
    // table keeps no private copy and the block is charged against the
    // cache budget exactly once.
    t->index_block_ =
        cache != nullptr
            ? cache->Insert(file_number, t->footer_.index_offset,
                            std::move(index_data))
            : BlockCache::Wrap(std::move(index_data));
    Slice in(*t->index_block_);
    while (!in.empty()) {
      uint32_t klen;
      if (!GetVarint32(&in, &klen) || in.size() < klen + 12) {
        return Status::Corruption("bad index entry: " + path);
      }
      IndexEntry entry;
      entry.last_key = Slice(in.data(), klen);
      in.RemovePrefix(klen);
      GetFixed64(&in, &entry.offset);
      GetFixed32(&in, &entry.size);
      t->index_.push_back(entry);
    }
  } else {
    // v2: the index block is prefix-compressed on disk; materialize the
    // full keys once into index_storage_ and drop the raw block.
    struct RawEntry {
      size_t key_offset;
      size_t key_size;
      uint64_t offset;
      uint32_t size;
    };
    std::vector<RawEntry> raw_entries;
    BlockCursor cursor(Slice(index_data), kTableFormatV2,
                       /*data_block=*/false);
    for (bool ok = cursor.SeekToFirst(); ok; ok = cursor.Next()) {
      const Slice payload = cursor.payload();
      if (payload.size() != 12) {
        return Status::Corruption("bad index entry: " + path);
      }
      RawEntry raw;
      raw.key_offset = t->index_storage_.size();
      raw.key_size = cursor.key().size();
      raw.offset = DecodeFixed64(payload.data());
      raw.size = DecodeFixed32(payload.data() + 8);
      t->index_storage_.append(cursor.key().data(), cursor.key().size());
      raw_entries.push_back(raw);
    }
    if (cursor.corrupt()) {
      return Status::Corruption("bad index block: " + path);
    }
    t->index_.reserve(raw_entries.size());
    for (const RawEntry& raw : raw_entries) {
      IndexEntry entry;
      entry.last_key =
          Slice(t->index_storage_.data() + raw.key_offset, raw.key_size);
      entry.offset = raw.offset;
      entry.size = raw.size;
      t->index_.push_back(entry);
    }
  }

  // Load the bloom filter(s), pinned and charged to the cache.
  auto load_pinned = [&](uint64_t offset, uint32_t size,
                         BlockCache::BlockHandle* handle,
                         Slice* contents) -> Status {
    std::string data(size, '\0');
    Slice read;
    APM_RETURN_IF_ERROR(t->file_->Read(offset, size, &read, data.data()));
    if (read.size() != size) {
      return Status::Corruption("short filter read: " + path);
    }
    if (read.data() != data.data()) {
      data.assign(read.data(), read.size());
    }
    *handle = cache != nullptr
                  ? cache->Insert(file_number, offset, std::move(data))
                  : BlockCache::Wrap(std::move(data));
    *contents = Slice(**handle);
    return Status::OK();
  };
  if (t->footer_.filter_size > 0) {
    APM_RETURN_IF_ERROR(load_pinned(t->footer_.filter_offset,
                                    t->footer_.filter_size, &t->filter_block_,
                                    &t->filter_));
  }
  if (t->footer_.prefix_filter_size > 0) {
    APM_RETURN_IF_ERROR(
        load_pinned(t->footer_.prefix_filter_offset,
                    t->footer_.prefix_filter_size, &t->prefix_filter_block_,
                    &t->prefix_filter_));
  }

  *table = std::move(t);
  return Status::OK();
}

bool Table::MayMatchPrefix(const Slice& prefix) const {
  if (prefix_filter_.empty()) return true;
  return BloomFilterMayMatch(prefix_filter_, prefix);
}

Status Table::ReadBlock(uint64_t offset, uint32_t size,
                        BlockCache::BlockHandle* block, bool fill_cache) {
  if (cache_ != nullptr) {
    *block = cache_->Lookup(file_number_, offset);
    if (*block != nullptr) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  if (size < 5) return Status::Corruption("block too small");
  std::string raw(size, '\0');
  Slice result;
  APM_RETURN_IF_ERROR(file_->Read(offset, size, &result, raw.data()));
  if (result.size() != size) return Status::Corruption("short block read");
  uint32_t stored_crc = UnmaskCrc(DecodeFixed32(result.data() + size - 4));
  if (stored_crc != Crc32c(result.data(), size - 4)) {
    return Status::Corruption("block checksum mismatch");
  }
  auto type = static_cast<CompressionType>(
      static_cast<uint8_t>(result.data()[size - 5]));
  std::string data;
  if (type == CompressionType::kLz) {
    if (!lz::Uncompress(Slice(result.data(), size - 5), &data)) {
      return Status::Corruption("block decompression failed");
    }
  } else if (type == CompressionType::kNone) {
    data.assign(result.data(), size - 5);
  } else {
    return Status::Corruption("unknown block compression type");
  }
  // Inserting returns the entry already pinned, so concurrent readers of
  // a hot block share the cache-owned bytes with no extra copy.
  *block = cache_ != nullptr && fill_cache
               ? cache_->Insert(file_number_, offset, std::move(data))
               : BlockCache::Wrap(std::move(data));
  return Status::OK();
}

int Table::FindBlock(const Slice& key) const {
  // Binary search for the first block whose last_key >= key.
  int lo = 0;
  int hi = static_cast<int>(index_.size()) - 1;
  int result = -1;
  while (lo <= hi) {
    int mid = lo + (hi - lo) / 2;
    if (Slice(index_[mid].last_key).Compare(key) >= 0) {
      result = mid;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  return result;
}

Status Table::Get(const ReadOptions& read_options, const Slice& key,
                  GetResult* result, std::string* value, uint64_t* seq) {
  *result = GetResult::kAbsent;
  if (!filter_.empty() && !BloomFilterMayMatch(filter_, key)) {
    return Status::OK();
  }
  int block_index = FindBlock(key);
  if (block_index < 0) return Status::OK();

  BlockCache::BlockHandle block;
  APM_RETURN_IF_ERROR(ReadBlock(index_[block_index].offset,
                                index_[block_index].size, &block,
                                read_options.fill_cache));
  BlockCursor cursor(Slice(*block), footer_.format_version);
  if (cursor.Seek(key) && cursor.key().Compare(key) == 0) {
    if (seq != nullptr) *seq = cursor.seq();
    if (cursor.tombstone()) {
      *result = GetResult::kDeleted;
    } else {
      *result = GetResult::kFound;
      value->assign(cursor.value().data(), cursor.value().size());
    }
    return Status::OK();
  }
  if (cursor.corrupt()) return Status::Corruption("corrupt data block");
  return Status::OK();
}

/// Iterator walking a table's blocks in order.
class TableIterator final : public Iterator {
 public:
  TableIterator(Table* table, const ReadOptions& read_options)
      : table_(table), read_options_(read_options) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    block_index_ = -1;
    valid_ = false;
    NextBlock();
  }

  void Seek(const Slice& target) override {
    valid_ = false;
    int idx = table_->FindBlock(target);
    if (idx < 0) return;
    if (!LoadBlock(idx)) return;
    if (cursor_->Seek(target)) {
      valid_ = true;
      return;
    }
    if (cursor_->corrupt()) {
      status_ = Status::Corruption("corrupt data block");
      return;
    }
    // Target is past this block's last key; move on.
    NextBlock();
  }

  void Next() override {
    if (!valid_) return;
    if (cursor_->Next()) return;
    if (cursor_->corrupt()) {
      status_ = Status::Corruption("corrupt data block");
      valid_ = false;
      return;
    }
    NextBlock();
  }

  Slice key() const override { return cursor_->key(); }
  Slice value() const override { return cursor_->value(); }
  bool IsTombstone() const override { return cursor_->tombstone(); }
  uint64_t seq() const override { return cursor_->seq(); }
  Status status() const override { return status_; }

 private:
  bool LoadBlock(int index) {
    block_index_ = index;
    Status s = table_->ReadBlock(table_->index_[index].offset,
                                 table_->index_[index].size, &block_,
                                 read_options_.fill_cache);
    if (!s.ok()) {
      status_ = s;
      return false;
    }
    cursor_ = std::make_unique<BlockCursor>(Slice(*block_),
                                            table_->footer_.format_version);
    return true;
  }

  void NextBlock() {
    for (;;) {
      int next = block_index_ + 1;
      if (next >= static_cast<int>(table_->index_.size())) {
        valid_ = false;
        return;
      }
      if (!LoadBlock(next)) {
        valid_ = false;
        return;
      }
      if (cursor_->SeekToFirst()) {
        valid_ = true;
        return;
      }
      if (cursor_->corrupt()) {
        status_ = Status::Corruption("corrupt data block");
        valid_ = false;
        return;
      }
    }
  }

  Table* table_;
  ReadOptions read_options_;
  int block_index_ = -1;
  BlockCache::BlockHandle block_;
  std::unique_ptr<BlockCursor> cursor_;
  bool valid_ = false;
  Status status_;
};

std::unique_ptr<Iterator> Table::NewIterator(const ReadOptions& read_options) {
  return std::make_unique<TableIterator>(this, read_options);
}

}  // namespace apmbench::lsm
