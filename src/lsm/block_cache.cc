#include "lsm/block_cache.h"

namespace apmbench::lsm {

BlockCache::BlockCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

BlockCache::BlockHandle BlockCache::Lookup(uint64_t file_number,
                                           uint64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(CacheKey{file_number, offset});
  if (it == index_.end()) {
    misses_++;
    return nullptr;
  }
  hits_++;
  // Move to front.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->block;
}

void BlockCache::Insert(uint64_t file_number, uint64_t offset,
                        BlockHandle block) {
  if (capacity_ == 0 || block == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  CacheKey key{file_number, offset};
  auto it = index_.find(key);
  if (it != index_.end()) {
    charge_ -= it->second->block->size();
    charge_ += block->size();
    it->second->block = std::move(block);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    charge_ += block->size();
    lru_.push_front(CacheEntry{key, std::move(block)});
    index_[key] = lru_.begin();
  }
  EvictIfNeeded();
}

void BlockCache::EvictFile(uint64_t file_number) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.file_number == file_number) {
      charge_ -= it->block->size();
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t BlockCache::charge() const {
  std::lock_guard<std::mutex> lock(mu_);
  return charge_;
}

void BlockCache::EvictIfNeeded() {
  while (charge_ > capacity_ && !lru_.empty()) {
    const CacheEntry& victim = lru_.back();
    charge_ -= victim.block->size();
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

}  // namespace apmbench::lsm
