#ifndef APMBENCH_LSM_OPTIONS_H_
#define APMBENCH_LSM_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/compression.h"

namespace apmbench {
class Env;
class RateLimiter;
}

namespace apmbench::lsm {

/// How SSTables are grouped for compaction.
enum class CompactionStyle {
  /// Cassandra-style: merge runs of similar-sized tables once
  /// `size_tiered_min_files` of them accumulate in a size bucket.
  kSizeTiered,
  /// LevelDB/HBase-major-compaction style: tiered levels with size budgets;
  /// a table from level n is merged with the overlapping tables of n+1.
  kLeveled,
};

/// Tuning knobs of the LSM engine. Defaults are sized for benchmark
/// datasets of a few hundred MB per instance.
struct Options {
  /// Directory holding WAL, SSTables, and MANIFEST. Must be set.
  std::string dir;

  /// Filesystem to use; Env::Default() when null.
  Env* env = nullptr;

  /// Memtable capacity; a full memtable becomes immutable and is flushed
  /// to an SSTable in the background.
  size_t memtable_bytes = 8 * 1024 * 1024;

  /// Arena block size for memtable bump allocation. A memtable can
  /// overshoot `memtable_bytes` by at most one arena block per shard
  /// (plus one oversized value), so smaller blocks mean tighter flush
  /// accounting and larger blocks mean fewer mallocs per memtable.
  /// DB::Open clamps this to `memtable_bytes / (4 * memtable_shards)`
  /// (floor 256) so a tiny write buffer never degenerates into a flush
  /// per write and the overshoot bound stays proportional to
  /// memtable_bytes regardless of shard count.
  size_t arena_block_bytes = 4 * 1024;

  /// Number of hash-partitioned shards in the live memtable, each with
  /// its own arena + skip list. With more than one shard, a write
  /// group's per-shard sub-batches are applied concurrently by the
  /// group-commit leader *and* its follower writers (RocksDB's
  /// allow_concurrent_memtable_write shape), which is what lets put
  /// throughput keep scaling past ~4 writer threads. 1 reproduces the
  /// pre-shard single-skiplist write path exactly. Must be a power of
  /// two in [1, 64]; DB::Open rejects other values, and halves the
  /// effective count until every shard keeps >= 1KiB of `memtable_bytes`
  /// (per-shard arena blocks are what the flush trigger charges, so a
  /// tiny write buffer split too many ways would rotate every few
  /// puts). On-disk format, WAL replay, and crash recovery are
  /// unaffected: a flush merges all shards into ordinary SSTables.
  int memtable_shards = 8;

  /// Target uncompressed size of one SSTable data block.
  size_t block_size = 4 * 1024;

  /// On-disk SSTable format written by flushes and compactions.
  ///   1: plain blocks, full key per entry (the original format).
  ///   2: prefix-compressed keys with restart points, versioned footer,
  ///      optional prefix bloom filter.
  /// Readers always understand both; compaction rewrites v1 tables into
  /// the configured version, so a DB opened with format_version=2 over an
  /// old directory converges to v2 as compaction touches each table.
  uint32_t format_version = 2;

  /// Format v2: number of entries between restart points in a block.
  /// Keys between restarts share a prefix with their predecessor; larger
  /// intervals compress better, smaller intervals make in-block seeks
  /// cheaper. Clamped to >= 1.
  int block_restart_interval = 16;

  /// Bloom filter bits per key in each SSTable (0 disables filters).
  int bloom_bits_per_key = 10;

  /// Format v2: when > 0, each table additionally stores a bloom filter
  /// over the first `prefix_bloom_length` bytes of its keys. Range scans
  /// issued with ReadOptions::prefix_same_as_start can then skip whole
  /// tables that contain no key with the scan's prefix, the way point
  /// gets already skip on the full-key bloom. 0 disables prefix blooms.
  size_t prefix_bloom_length = 0;

  /// Per-block compression of SSTable data blocks. The paper ran all
  /// systems uncompressed ("the disk usage can be reduced by using
  /// compression which, however, will decrease the throughput"); the
  /// tradeoff is measured by bench/ablation_compression.
  CompressionType compression = CompressionType::kNone;

  /// Capacity of the shared LRU block cache.
  size_t block_cache_bytes = 32 * 1024 * 1024;

  /// log2 of the block cache's shard count (4 → 16 shards, the
  /// LevelDB/RocksDB default). Each shard is an independent LRU with its
  /// own mutex; more shards means less contention between concurrent
  /// readers. Clamped to [0, 8].
  int block_cache_shard_bits = 4;

  /// fsync the WAL on every write (the paper's systems run with
  /// group-commit / periodic sync; default off to match).
  bool sync_writes = false;

  CompactionStyle compaction_style = CompactionStyle::kSizeTiered;

  /// Size-tiered: minimum number of similar-sized tables to merge.
  int size_tiered_min_files = 4;
  /// Size-tiered: tables within [avg*low, avg*high] form one bucket.
  double size_tiered_bucket_low = 0.5;
  double size_tiered_bucket_high = 1.5;

  /// Leveled: level-0 file count that triggers a compaction.
  int level0_compaction_trigger = 4;
  /// Leveled: byte budget of level 1; each deeper level is 10x larger.
  uint64_t level1_max_bytes = 32ull * 1024 * 1024;

  /// Size of the compaction thread pool. Flushes always run on their own
  /// dedicated thread; these threads only run compactions, so a long
  /// merge can never delay memtable flushes. Clamped to >= 1.
  int compaction_threads = 2;

  /// Maximum number of parallel subcompactions per leveled compaction
  /// job: the job's key range is partitioned and the pieces are merged
  /// concurrently through a shared FanoutExecutor. 1 disables splitting.
  int subcompactions = 1;

  /// Write admission control (RocksDB semantics). When the number of
  /// level-0 sorted runs reaches `level0_slowdown_trigger`, each write is
  /// delayed once by ~1ms to let compaction gain ground; at
  /// `level0_stop_trigger` writers block until the count drops. Under the
  /// size-tiered style every table lives in L0, so these bound the total
  /// sorted-run count (universal-compaction style). 0 disables a trigger.
  int level0_slowdown_trigger = 20;
  int level0_stop_trigger = 36;

  /// Byte budget per second for background I/O (flush + compaction),
  /// enforced by a token-bucket RateLimiter. 0 = unlimited. Ignored when
  /// `rate_limiter` is set explicitly.
  uint64_t rate_limit_bytes_per_sec = 0;

  /// Optional explicit limiter, shared across DBs so several LSM nodes
  /// of one store draw from a single machine-wide budget. When null and
  /// rate_limit_bytes_per_sec > 0, the DB creates a private one.
  std::shared_ptr<RateLimiter> rate_limiter;

  /// Number of levels maintained by the leveled strategy.
  static constexpr int kNumLevels = 7;
};

/// Read-time options.
struct ReadOptions {
  /// Fill the block cache with blocks read by this operation.
  bool fill_cache = true;

  /// Scan-only: promise that the caller only consumes keys sharing the
  /// first min(prefix_bloom_length, start.size()) bytes of the scan start
  /// key. The scan then truncates its result at the end of that prefix
  /// range and may skip entire tables via their prefix bloom filters.
  /// Ignored by Get.
  bool prefix_same_as_start = false;
};

}  // namespace apmbench::lsm

#endif  // APMBENCH_LSM_OPTIONS_H_
