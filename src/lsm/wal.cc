#include "lsm/wal.h"

#include "common/coding.h"
#include "common/crc32.h"

namespace apmbench::lsm {

LogWriter::LogWriter(std::unique_ptr<WritableFile> file)
    : file_(std::move(file)) {}

Status LogWriter::AddRecord(const Slice& payload, bool sync) {
  std::string header;
  uint32_t crc = MaskCrc(Crc32c(payload.data(), payload.size()));
  PutFixed32(&header, crc);
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  APM_RETURN_IF_ERROR(file_->Append(header));
  APM_RETURN_IF_ERROR(file_->Append(payload));
  if (sync) {
    return file_->Sync();
  }
  return file_->Flush();
}

Status LogWriter::Close() { return file_->Close(); }

Status LogReader::Open(Env* env, const std::string& path,
                       std::unique_ptr<LogReader>* reader) {
  std::string contents;
  APM_RETURN_IF_ERROR(env->ReadFileToString(path, &contents));
  reader->reset(new LogReader(std::move(contents)));
  return Status::OK();
}

bool LogReader::ReadRecord(std::string* payload) {
  if (offset_ + 8 > contents_.size()) return false;
  const char* base = contents_.data() + offset_;
  uint32_t masked_crc = DecodeFixed32(base);
  uint32_t length = DecodeFixed32(base + 4);
  if (offset_ + 8 + length > contents_.size()) return false;  // torn tail
  const char* data = base + 8;
  if (UnmaskCrc(masked_crc) != Crc32c(data, length)) return false;
  payload->assign(data, length);
  offset_ += 8 + length;
  return true;
}

}  // namespace apmbench::lsm
