#include "lsm/wal.h"

#include "common/coding.h"
#include "common/crc32.h"

namespace apmbench::lsm {

LogWriter::LogWriter(std::unique_ptr<WritableFile> file)
    : file_(std::move(file)) {}

Status LogWriter::AddRecord(const Slice& payload, bool sync) {
  std::string header;
  uint32_t crc = MaskCrc(Crc32c(payload.data(), payload.size()));
  PutFixed32(&header, crc);
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  APM_RETURN_IF_ERROR(file_->Append(header));
  APM_RETURN_IF_ERROR(file_->Append(payload));
  if (sync) {
    return file_->Sync();
  }
  return file_->Flush();
}

Status LogWriter::Sync() { return file_->Sync(); }

Status LogWriter::Close() { return file_->Close(); }

Status LogReader::Open(Env* env, const std::string& path,
                       std::unique_ptr<LogReader>* reader) {
  std::string contents;
  APM_RETURN_IF_ERROR(env->ReadFileToString(path, &contents));
  reader->reset(new LogReader(std::move(contents)));
  return Status::OK();
}

bool LogReader::ReadRecord(std::string* payload) {
  if (!status_.ok()) return false;
  if (offset_ >= contents_.size()) return false;
  const uint64_t remaining = contents_.size() - offset_;
  if (remaining < 8) {
    // A header fragment at the end of the file: an append was interrupted
    // mid-frame. Benign torn tail.
    dropped_bytes_ = remaining;
    return false;
  }
  const char* base = contents_.data() + offset_;
  uint32_t masked_crc = DecodeFixed32(base);
  uint32_t length = DecodeFixed32(base + 4);
  if (8 + static_cast<uint64_t>(length) > remaining) {
    // The record extends past end of file: interrupted payload append.
    // (A corrupted length field can also land here; with nothing after
    // the frame to recover, treating it as a torn tail is safe.)
    dropped_bytes_ = remaining;
    return false;
  }
  const char* data = base + 8;
  if (UnmaskCrc(masked_crc) != Crc32c(data, length)) {
    dropped_bytes_ = remaining;
    if (8 + static_cast<uint64_t>(length) < remaining) {
      // Valid-looking frames follow the damaged one, so this is not an
      // interrupted append at the tail: the medium lost or flipped bits
      // mid-log, and everything from here on is unrecoverable.
      status_ = Status::Corruption(
          "WAL corruption at offset " + std::to_string(offset_) + ": " +
          std::to_string(remaining) + " trailing bytes unrecoverable");
    }
    return false;
  }
  payload->assign(data, length);
  offset_ += 8 + length;
  dropped_bytes_ = 0;
  return true;
}

}  // namespace apmbench::lsm
