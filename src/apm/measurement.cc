#include "apm/measurement.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/hash.h"

namespace apmbench::apm {

std::string MeasurementCodec::MetricPrefix(const std::string& metric) {
  uint64_t hash = MurmurHash64A(metric.data(), metric.size(), 0xA9F1);
  char buf[16];
  snprintf(buf, sizeof(buf), "m%012" PRIx64, hash & 0xffffffffffffULL);
  return buf;
}

std::string MeasurementCodec::Key(const std::string& metric,
                                  uint64_t timestamp) {
  char buf[16];
  snprintf(buf, sizeof(buf), "%012" PRIu64, timestamp % 1000000000000ULL);
  return MetricPrefix(metric) + buf;
}

namespace {

std::string FixedDouble(double v) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%10.3f", v);
  return std::string(buf, 10);
}

std::string FixedUint(uint64_t v) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%010" PRIu64, v % 10000000000ULL);
  return std::string(buf, 10);
}

}  // namespace

ycsb::Record MeasurementCodec::ToRecord(const Measurement& m) {
  return ycsb::Record{{"field0", FixedDouble(m.value)},
                      {"field1", FixedDouble(m.min)},
                      {"field2", FixedDouble(m.max)},
                      {"field3", FixedUint(m.timestamp)},
                      {"field4", FixedUint(m.duration)}};
}

Status MeasurementCodec::FromRecord(const ycsb::Record& record,
                                    Measurement* m) {
  if (record.size() < 5) {
    return Status::Corruption("measurement record needs 5 fields");
  }
  // Fields may arrive reordered from per-cell stores; index by name.
  const std::string* fields[5] = {nullptr, nullptr, nullptr, nullptr,
                                  nullptr};
  for (const auto& [name, value] : record) {
    if (name.size() == 6 && name.rfind("field", 0) == 0) {
      int index = name[5] - '0';
      if (index >= 0 && index < 5) fields[index] = &value;
    }
  }
  for (const auto* field : fields) {
    if (field == nullptr) {
      return Status::Corruption("missing measurement field");
    }
  }
  m->value = strtod(fields[0]->c_str(), nullptr);
  m->min = strtod(fields[1]->c_str(), nullptr);
  m->max = strtod(fields[2]->c_str(), nullptr);
  m->timestamp = strtoull(fields[3]->c_str(), nullptr, 10);
  m->duration = static_cast<uint32_t>(strtoul(fields[4]->c_str(), nullptr, 10));
  return Status::OK();
}

Status MeasurementCodec::Write(ycsb::DB* db, const std::string& table,
                               const Measurement& measurement) {
  std::string key = Key(measurement.metric, measurement.timestamp);
  return db->Insert(table, Slice(key), ToRecord(measurement));
}

}  // namespace apmbench::apm
