#include "apm/triggers.h"

namespace apmbench::apm {

void TriggerEngine::AddRule(const TriggerRule& rule) {
  RuleState state;
  state.rule = rule;
  rules_.emplace(rule.metric, std::move(state));
}

bool TriggerEngine::Breaches(const TriggerRule& rule, double value) {
  return rule.direction == TriggerRule::Direction::kAbove
             ? value > rule.threshold
             : value < rule.threshold;
}

std::vector<Notification> TriggerEngine::Observe(
    const Measurement& measurement) {
  std::vector<Notification> fired;
  auto [begin, end] = rules_.equal_range(measurement.metric);
  for (auto it = begin; it != end; ++it) {
    RuleState& state = it->second;
    if (Breaches(state.rule, measurement.value)) {
      state.breach_run++;
      if (!state.active &&
          state.breach_run >= state.rule.consecutive_intervals) {
        state.active = true;
        fired_++;
        Notification notification;
        notification.metric = measurement.metric;
        notification.value = measurement.value;
        notification.threshold = state.rule.threshold;
        notification.timestamp = measurement.timestamp;
        notification.breached_intervals = state.breach_run;
        fired.push_back(std::move(notification));
      }
    } else {
      // Recovered: re-arm.
      state.breach_run = 0;
      state.active = false;
    }
  }
  return fired;
}

}  // namespace apmbench::apm
