#include "apm/agent.h"

#include <algorithm>
#include <cmath>

namespace apmbench::apm {

AgentFleet::AgentFleet(const FleetConfig& config)
    : config_(config), rng_(config.seed) {
  levels_.resize(static_cast<size_t>(config_.hosts) *
                 static_cast<size_t>(config_.metrics_per_host));
  for (double& level : levels_) {
    level = 10.0 + rng_.NextDouble() * 90.0;
  }
}

std::string AgentFleet::MetricName(int host, int metric) const {
  // Mirrors Figure 2's hierarchy: Host/Agent/Component/Metric.
  return "Host" + std::to_string(host) + "/Agent0/Component" +
         std::to_string(metric % 10) + "/Metric" + std::to_string(metric);
}

std::vector<Measurement> AgentFleet::Tick(uint64_t timestamp) {
  std::vector<Measurement> out;
  out.reserve(levels_.size());
  for (int host = 0; host < config_.hosts; host++) {
    for (int metric = 0; metric < config_.metrics_per_host; metric++) {
      size_t index = static_cast<size_t>(host) *
                         static_cast<size_t>(config_.metrics_per_host) +
                     static_cast<size_t>(metric);
      // Random walk with reflection at zero; the interval aggregate
      // carries min/max around the walk's current level.
      double& level = levels_[index];
      level += rng_.UniformDouble(-2.0, 2.0);
      level = std::max(0.0, level);
      double spread = rng_.NextDouble() * 5.0;

      Measurement m;
      m.metric = MetricName(host, metric);
      m.value = level;
      m.min = std::max(0.0, level - spread);
      m.max = level + spread;
      m.timestamp = timestamp;
      m.duration = config_.interval_seconds;
      out.push_back(std::move(m));
    }
  }
  return out;
}

Status AgentFleet::Replay(ycsb::DB* db, const std::string& table,
                          uint64_t start_timestamp, int intervals,
                          uint64_t* written) {
  *written = 0;
  for (int i = 0; i < intervals; i++) {
    uint64_t timestamp =
        start_timestamp + static_cast<uint64_t>(i) * config_.interval_seconds;
    for (const Measurement& m : Tick(timestamp)) {
      APM_RETURN_IF_ERROR(MeasurementCodec::Write(db, table, m));
      (*written)++;
    }
  }
  return Status::OK();
}

}  // namespace apmbench::apm
