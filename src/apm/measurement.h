#ifndef APMBENCH_APM_MEASUREMENT_H_
#define APMBENCH_APM_MEASUREMENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "ycsb/db.h"

namespace apmbench::apm {

/// One APM measurement, exactly the record of Figure 2: agents aggregate
/// events over a reporting interval and ship (metric name, aggregate
/// value, min, max, timestamp, duration).
struct Measurement {
  /// Hierarchical metric identifier, e.g.
  /// "HostA/AgentX/ServletB/AverageResponseTime".
  std::string metric;
  double value = 0;
  double min = 0;
  double max = 0;
  /// Unix seconds of the interval end.
  uint64_t timestamp = 0;
  /// Interval length in seconds.
  uint32_t duration = 0;
};

/// Maps measurements onto the benchmark's generic data model: a 25-byte
/// key and five 10-byte fields (a 75-byte raw record, Section 3).
///
/// The key layout is "m" + 12 hex chars of the metric-name hash + 12
/// decimal digits of the timestamp, so all samples of one metric are
/// adjacent and time-ordered — a window query is a seek plus a short
/// scan, which is precisely the paper's small-scan access pattern.
class MeasurementCodec {
 public:
  static constexpr int kKeyLength = 25;
  static constexpr int kFieldLength = 10;

  /// The storage key for (metric, timestamp).
  static std::string Key(const std::string& metric, uint64_t timestamp);
  /// The 13-byte key prefix shared by every sample of `metric`.
  static std::string MetricPrefix(const std::string& metric);

  /// Serializes into the 5-field record shape.
  static ycsb::Record ToRecord(const Measurement& measurement);
  /// Parses a record back (metric name is not stored in the record; the
  /// caller supplies it or leaves it empty).
  static Status FromRecord(const ycsb::Record& record,
                           Measurement* measurement);

  /// Writes `measurement` into `db`.
  static Status Write(ycsb::DB* db, const std::string& table,
                      const Measurement& measurement);
};

}  // namespace apmbench::apm

#endif  // APMBENCH_APM_MEASUREMENT_H_
