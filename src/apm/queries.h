#ifndef APMBENCH_APM_QUERIES_H_
#define APMBENCH_APM_QUERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "apm/measurement.h"
#include "common/status.h"
#include "ycsb/db.h"

namespace apmbench::apm {

/// Aggregate over one metric's samples in [from, to] (timestamps in unix
/// seconds, inclusive).
struct WindowAggregate {
  int samples = 0;
  double avg = 0;
  double min = 0;
  double max = 0;
};

/// The on-line monitoring queries of Section 2, implemented as the small
/// ordered scans the storage benchmark models:
///
///   "What was the maximum number of connections on host X within the
///    last 10 minutes?"         -> WindowQuery(max over one metric)
///   "What was the average CPU utilization of Web servers of type Y
///    within the last 15 minutes?" -> FleetAverage(avg across metrics)

/// Scans `metric`'s samples in [from, to]; NotFound when no samples.
Status WindowQuery(ycsb::DB* db, const std::string& table,
                   const std::string& metric, uint64_t from, uint64_t to,
                   WindowAggregate* result);

/// Averages the window aggregates of several metrics (the same metric
/// measured on different machines), as the multi-host query requires.
Status FleetAverage(ycsb::DB* db, const std::string& table,
                    const std::vector<std::string>& metrics, uint64_t from,
                    uint64_t to, WindowAggregate* result);

}  // namespace apmbench::apm

#endif  // APMBENCH_APM_QUERIES_H_
