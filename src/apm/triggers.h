#ifndef APMBENCH_APM_TRIGGERS_H_
#define APMBENCH_APM_TRIGGERS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apm/measurement.h"

namespace apmbench::apm {

/// A threshold rule over one metric. Section 2: "Some of the metrics are
/// monitored by certain triggers that issue notifications in extreme
/// cases."
struct TriggerRule {
  enum class Direction { kAbove, kBelow };

  std::string metric;
  double threshold = 0;
  Direction direction = Direction::kAbove;
  /// Number of consecutive breaching intervals before the notification
  /// fires (debouncing: one noisy sample should not page an operator).
  int consecutive_intervals = 1;
};

/// An emitted notification.
struct Notification {
  std::string metric;
  double value = 0;
  double threshold = 0;
  uint64_t timestamp = 0;
  /// How many consecutive intervals were in breach when it fired.
  int breached_intervals = 0;
};

/// Evaluates trigger rules against the live measurement stream. Feed
/// every measurement through Observe as it arrives (before or after
/// storage — the engine is independent of the store). A rule fires once
/// when its consecutive-breach count is first reached and re-arms after
/// the metric recovers.
///
/// Thread-compatibility: externally synchronized (the agent pipeline
/// feeds it from one thread).
class TriggerEngine {
 public:
  void AddRule(const TriggerRule& rule);
  size_t rule_count() const { return rules_.size(); }

  /// Processes one measurement; returns the notifications it fired.
  std::vector<Notification> Observe(const Measurement& measurement);

  uint64_t notifications_fired() const { return fired_; }

 private:
  struct RuleState {
    TriggerRule rule;
    int breach_run = 0;
    bool active = false;  // fired and not yet recovered
  };

  static bool Breaches(const TriggerRule& rule, double value);

  /// Rules indexed by metric name (multiple rules per metric allowed).
  std::multimap<std::string, RuleState> rules_;
  uint64_t fired_ = 0;
};

}  // namespace apmbench::apm

#endif  // APMBENCH_APM_TRIGGERS_H_
