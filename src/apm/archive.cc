#include "apm/archive.h"

#include <algorithm>

namespace apmbench::apm {

Status ArchiveSeries(ycsb::DB* db, const std::string& table,
                     const std::string& metric, uint64_t from, uint64_t to,
                     uint64_t bucket_seconds,
                     std::vector<SeriesPoint>* series) {
  series->clear();
  if (to < from) return Status::InvalidArgument("empty window");
  if (bucket_seconds == 0) {
    return Status::InvalidArgument("bucket_seconds must be positive");
  }

  std::string cursor = MeasurementCodec::Key(metric, from);
  const std::string end_key = MeasurementCodec::Key(metric, to);
  SeriesPoint current;
  bool current_open = false;
  double current_sum = 0;
  auto flush = [&]() {
    if (!current_open) return;
    current.avg = current_sum / current.samples;
    series->push_back(current);
    current_open = false;
  };

  for (;;) {
    std::vector<ycsb::KeyedRecord> records;
    // Archive scans use large batches: these are the bulk reads the paper
    // allows to take minutes, not the 50-record on-line window.
    APM_RETURN_IF_ERROR(db->ScanKeyed(table, Slice(cursor), 512, &records));
    if (records.empty()) break;
    bool done = false;
    for (const ycsb::KeyedRecord& entry : records) {
      if (entry.key > end_key) {
        done = true;
        break;
      }
      Measurement m;
      APM_RETURN_IF_ERROR(MeasurementCodec::FromRecord(entry.record, &m));
      uint64_t bucket =
          from + ((m.timestamp - from) / bucket_seconds) * bucket_seconds;
      if (!current_open || bucket != current.bucket_start) {
        flush();
        current = SeriesPoint();
        current.bucket_start = bucket;
        current.min = m.min;
        current.max = m.max;
        current_sum = 0;
        current_open = true;
      }
      current.samples++;
      current_sum += m.value;
      current.min = std::min(current.min, m.min);
      current.max = std::max(current.max, m.max);
    }
    if (done || static_cast<int>(records.size()) < 512) break;
    cursor = records.back().key + '\x01';
    if (cursor > end_key) break;
  }
  flush();
  if (series->empty()) return Status::NotFound("no samples in range");
  return Status::OK();
}

Status ArchiveAggregate(ycsb::DB* db, const std::string& table,
                        const std::vector<std::string>& metrics,
                        uint64_t from, uint64_t to, WindowAggregate* result) {
  *result = WindowAggregate();
  double weighted_sum = 0;
  bool first = true;
  for (const std::string& metric : metrics) {
    std::vector<SeriesPoint> series;
    Status s = ArchiveSeries(db, table, metric, from, to,
                             to - from + 1, &series);
    if (s.IsNotFound()) continue;
    APM_RETURN_IF_ERROR(s);
    for (const SeriesPoint& point : series) {
      result->samples += point.samples;
      weighted_sum += point.avg * point.samples;
      if (first) {
        result->min = point.min;
        result->max = point.max;
        first = false;
      } else {
        result->min = std::min(result->min, point.min);
        result->max = std::max(result->max, point.max);
      }
    }
  }
  if (result->samples == 0) return Status::NotFound("no samples in range");
  result->avg = weighted_sum / result->samples;
  return Status::OK();
}

Status ArchiveMaxBucketAverage(ycsb::DB* db, const std::string& table,
                               const std::string& metric, uint64_t from,
                               uint64_t to, uint64_t bucket_seconds,
                               double* max_average) {
  std::vector<SeriesPoint> series;
  APM_RETURN_IF_ERROR(
      ArchiveSeries(db, table, metric, from, to, bucket_seconds, &series));
  *max_average = series.front().avg;
  for (const SeriesPoint& point : series) {
    *max_average = std::max(*max_average, point.avg);
  }
  return Status::OK();
}

}  // namespace apmbench::apm
