#include "apm/queries.h"

#include <algorithm>

namespace apmbench::apm {

Status WindowQuery(ycsb::DB* db, const std::string& table,
                   const std::string& metric, uint64_t from, uint64_t to,
                   WindowAggregate* result) {
  *result = WindowAggregate();
  if (to < from) return Status::InvalidArgument("empty window");
  // One sample per reporting interval: a 10-minute window at 10-second
  // resolution is 60 records — the paper's canonical small scan. Fetch in
  // bounded batches until the window's end.
  std::string cursor = MeasurementCodec::Key(metric, from);
  const std::string end_key = MeasurementCodec::Key(metric, to);
  double sum = 0;
  bool first = true;
  for (;;) {
    std::vector<ycsb::KeyedRecord> records;
    APM_RETURN_IF_ERROR(db->ScanKeyed(table, Slice(cursor), 64, &records));
    if (records.empty()) break;
    bool done = false;
    for (const ycsb::KeyedRecord& entry : records) {
      // The key bounds the range exactly: stop at the first key past the
      // window's end (which includes keys of other metrics).
      if (entry.key > end_key) {
        done = true;
        break;
      }
      Measurement m;
      APM_RETURN_IF_ERROR(MeasurementCodec::FromRecord(entry.record, &m));
      result->samples++;
      sum += m.value;
      if (first) {
        result->min = m.min;
        result->max = m.max;
        first = false;
      } else {
        result->min = std::min(result->min, m.min);
        result->max = std::max(result->max, m.max);
      }
    }
    if (done || static_cast<int>(records.size()) < 64) break;
    cursor = records.back().key + '\x01';
    if (cursor > end_key) break;
  }
  if (result->samples == 0) return Status::NotFound("no samples in window");
  result->avg = sum / result->samples;
  return Status::OK();
}

Status FleetAverage(ycsb::DB* db, const std::string& table,
                    const std::vector<std::string>& metrics, uint64_t from,
                    uint64_t to, WindowAggregate* result) {
  *result = WindowAggregate();
  double sum = 0;
  bool first = true;
  int with_data = 0;
  for (const std::string& metric : metrics) {
    WindowAggregate one;
    Status s = WindowQuery(db, table, metric, from, to, &one);
    if (s.IsNotFound()) continue;
    APM_RETURN_IF_ERROR(s);
    with_data++;
    result->samples += one.samples;
    sum += one.avg;
    if (first) {
      result->min = one.min;
      result->max = one.max;
      first = false;
    } else {
      result->min = std::min(result->min, one.min);
      result->max = std::max(result->max, one.max);
    }
  }
  if (with_data == 0) return Status::NotFound("no samples in window");
  result->avg = sum / with_data;
  return Status::OK();
}

}  // namespace apmbench::apm
