#ifndef APMBENCH_APM_AGENT_H_
#define APMBENCH_APM_AGENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "apm/measurement.h"
#include "common/random.h"
#include "common/status.h"
#include "ycsb/db.h"

namespace apmbench::apm {

/// Configuration of a simulated monitored data center (Section 1's
/// customer scenario: up to 10K nodes x ~10K metrics at 10-second
/// intervals; defaults here are laptop-sized).
struct FleetConfig {
  int hosts = 10;
  int metrics_per_host = 100;
  /// Agents aggregate and report every `interval_seconds`.
  uint32_t interval_seconds = 10;
  uint64_t seed = 1;
};

/// Generates the measurement stream a fleet of monitoring agents would
/// report: each host owns `metrics_per_host` metrics whose values follow
/// independent random walks, aggregated per interval into Figure-2
/// records.
class AgentFleet {
 public:
  explicit AgentFleet(const FleetConfig& config);

  /// Metric name of (host, metric) — hierarchical, as in Figure 2.
  std::string MetricName(int host, int metric) const;

  /// Produces one reporting interval ending at `timestamp` (all hosts,
  /// all metrics).
  std::vector<Measurement> Tick(uint64_t timestamp);

  /// Runs `intervals` ticks starting at `start_timestamp`, writing every
  /// measurement to `db`. Returns the number of measurements written.
  Status Replay(ycsb::DB* db, const std::string& table,
                uint64_t start_timestamp, int intervals,
                uint64_t* written);

  int64_t measurements_per_interval() const {
    return static_cast<int64_t>(config_.hosts) * config_.metrics_per_host;
  }
  /// The sustained insert rate this fleet generates (measurements/sec) —
  /// the sizing quantity of Sections 1 and 8.
  double measurements_per_second() const {
    return static_cast<double>(measurements_per_interval()) /
           config_.interval_seconds;
  }

 private:
  FleetConfig config_;
  Random rng_;
  /// Random-walk state per (host, metric).
  std::vector<double> levels_;
};

}  // namespace apmbench::apm

#endif  // APMBENCH_APM_AGENT_H_
