#ifndef APMBENCH_APM_ARCHIVE_H_
#define APMBENCH_APM_ARCHIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "apm/measurement.h"
#include "apm/queries.h"
#include "common/status.h"
#include "ycsb/db.h"

namespace apmbench::apm {

/// One bucket of a time-bucketed archive series.
struct SeriesPoint {
  uint64_t bucket_start = 0;
  int samples = 0;
  double avg = 0;
  double min = 0;
  double max = 0;
};

/// Section 2's *analytical* queries over the long-term archive — the ones
/// that "may finish in the order of minutes" rather than sub-second:
///
///   "What was the average total response time for Web requests served by
///    replications of servlet X in December 2011?"
///   "What was the maximum average response time of calls from
///    application Y to database Z within the last month?"
///
/// Unlike the on-line window queries, these walk a long key range and
/// aggregate into coarse buckets.

/// Buckets `metric`'s samples in [from, to] into windows of
/// `bucket_seconds`, producing one SeriesPoint per non-empty bucket in
/// time order. NotFound when the range holds no samples.
Status ArchiveSeries(ycsb::DB* db, const std::string& table,
                     const std::string& metric, uint64_t from, uint64_t to,
                     uint64_t bucket_seconds,
                     std::vector<SeriesPoint>* series);

/// Sample-weighted aggregate of one logical metric measured on several
/// replicas/hosts over a long window (the "replications of servlet X"
/// query): avg is weighted by sample count, min/max are global.
Status ArchiveAggregate(ycsb::DB* db, const std::string& table,
                        const std::vector<std::string>& metrics,
                        uint64_t from, uint64_t to, WindowAggregate* result);

/// The "maximum average" query: buckets each metric's series (e.g., per
/// interval average over replicas) and returns the maximum bucket
/// average observed in the window.
Status ArchiveMaxBucketAverage(ycsb::DB* db, const std::string& table,
                               const std::string& metric, uint64_t from,
                               uint64_t to, uint64_t bucket_seconds,
                               double* max_average);

}  // namespace apmbench::apm

#endif  // APMBENCH_APM_ARCHIVE_H_
