#ifndef APMBENCH_SIMSTORES_CALIBRATION_H_
#define APMBENCH_SIMSTORES_CALIBRATION_H_

namespace apmbench::simstores {

/// Calibration constants for the six system models.
///
/// Methodology: the *mechanisms* in each model (token-ring balance, Jedis
/// imbalance, synchronous-client coordination, per-cell reads, buffer-pool
/// misses, scan-without-LIMIT, client connection caps) come from the
/// paper's system descriptions and our real engine implementations; the
/// *service-time constants* below are calibrated against the paper's
/// single-node anchors (Section 5.1: Redis > 50K ops/s, VoltDB ~45K,
/// Cassandra ≈ MySQL ≈ 25K, Voldemort ~12K, HBase ~2.5K on Workload R)
/// and checked against the microbenchmarks of our own engines
/// (bench/micro_engines). Latencies are then *emergent* from closed-loop
/// queueing (Little's law), not fitted.
///
/// All times in seconds.
namespace calib {

// --- Cassandra: LSM, balanced token ring, all cores, full 128 conns ---
inline constexpr double kCassandraReadCpu = 330e-6;
inline constexpr double kCassandraWriteCpu = 250e-6;
// Flush + size-tiered compaction debt per write (amortized CPU).
inline constexpr double kCassandraWriteBgCpu = 90e-6;
// In a multi-node ring the client contacts a random node; with
// probability (n-1)/n that node is not the token owner and acts as a
// coordinator, forwarding the request (extra CPU + a LAN hop). This is
// why the paper's Cassandra throughput is linear per added node but at a
// lower per-node rate than the single-node run (25K -> ~14.6K/node).
inline constexpr double kCassandraCoordinatorCpu = 190e-6;
// Scans observed ~4x slower than reads (Section 5.4): a range slice is
// token-contiguous, so it stays on (essentially) one node, but the
// coordinator pages through it in several sequential rounds, each
// waiting in the same queue a read does.
inline constexpr int kCassandraScanRounds = 4;

// --- HBase: LSM on a replicated FS; reads traverse HDFS layers ---
inline constexpr double kHBaseReadCpu = 3.2e-3;
inline constexpr double kHBaseWriteCpu = 180e-6;
// Memstore flush + compaction + HDFS pipeline debt per write.
inline constexpr double kHBaseWriteBgCpu = 1.35e-3;
// The YCSB HBase client buffers writes; roughly 1 in kHBaseFlushEvery
// writes pays a synchronous server round trip, the rest complete in the
// client buffer — which is why the paper's HBase write latency is far
// below every queueing latency in the system.
inline constexpr int kHBaseFlushEvery = 100;
inline constexpr double kHBaseBufferedWriteDelay = 250e-6;
// Scans are region-local sequential reads.
inline constexpr double kHBaseScanFactor = 1.15;

// --- Voldemort: BDB B+tree; client capped at few in-flight requests ---
inline constexpr double kVoldemortReadCpu = 250e-6;
inline constexpr double kVoldemortWriteCpu = 260e-6;
// Section 6: the Voldemort client's thread/connection pool limits kept
// effective concurrency per node tiny (observed 230-260us latencies at
// 12K ops/s/node imply ~3 in flight per node by Little's law).
inline constexpr int kVoldemortConnectionsPerNode = 4;

// --- Redis: single-threaded event loop; Jedis client-side sharding ---
inline constexpr double kRedisOpCpu = 17e-6;
// A scan is a sorted-set range plus the per-key fetches, all on the
// owning shard's single-threaded loop.
inline constexpr double kRedisScanCpu = 150e-6;
// Client-side sharding + network floor per op.
inline constexpr double kRedisClientDelay = 0.45e-3;
// The sharded client stack saturated: doubling client machines still
// left total in-flight requests roughly constant (Section 5.1/6).
inline constexpr int kRedisTotalConnections = 30;

// --- VoltDB: 6 serial sites per host; synchronous client ---
inline constexpr int kVoltSitesPerHost = 6;
inline constexpr double kVoltOpCpu = 130e-6;
// Cross-node transaction initiation serializes on a cluster-wide
// ordering agreement; with the synchronous YCSB client this is the
// scaling killer the paper observed.
inline constexpr double kVoltGlobalCoordCpu = 60e-6;
inline constexpr double kVoltRemoteRtt = 0.4e-3;
inline constexpr double kVoltScanSiteCpu = 100e-6;

// --- MySQL: InnoDB B+tree + binlog; hash-sharded client ---
inline constexpr double kMySqlReadCpu = 310e-6;
inline constexpr double kMySqlWriteCpu = 630e-6;
// Client concurrency grew with cluster size until the 5 client machines
// saturated (Section 3: at most 5 client nodes).
inline constexpr int kMySqlConnectionsPerNode = 40;
inline constexpr int kMySqlMaxConnections = 144;
// JDBC client + connector stack per-request overhead.
inline constexpr double kMySqlClientDelay = 0.6e-3;
// Scans: SELECT ... >= key streamed from InnoDB. Small clusters stream
// efficiently; beyond 2 nodes the client drags the shard tail
// (Section 5.4), and under heavy insert mixes next-key locking between
// the tail scan and inserts collapses throughput (Section 5.5: 20 ops/s
// at 1 node, < 1 op/s at 4+).
inline constexpr double kMySqlScanCpuSmall = 0.45e-3;
inline constexpr double kMySqlScanTailFactor = 40.0;      // nodes > 2
inline constexpr double kMySqlScanInsertHeavyCpu = 0.15;  // RSW regime
inline constexpr double kMySqlInsertHeavyThreshold = 0.25;

// --- Cluster D (disk-bound) cache hit ratios ---
// Page-cache hit probability ~ cacheable bytes / on-disk bytes; the
// on-disk footprints differ per system (Figure 17), so the hit ratios
// do too.
inline constexpr double kCassandraHitRatioD = 0.62;
inline constexpr double kHBaseHitRatioD = 0.35;
inline constexpr double kVoldemortHitRatioD = 0.55;
// LSM writes are sequential appends: bytes-amortized disk time plus a
// rare forced seek; B+tree writes dirty random leaves.
inline constexpr double kLsmWriteAmplification = 4.0;
inline constexpr double kBTreeWritebackMissFactor = 0.3;

}  // namespace calib

}  // namespace apmbench::simstores

#endif  // APMBENCH_SIMSTORES_CALIBRATION_H_
