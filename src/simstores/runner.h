#ifndef APMBENCH_SIMSTORES_RUNNER_H_
#define APMBENCH_SIMSTORES_RUNNER_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "common/status.h"
#include "simstores/model.h"

namespace apmbench::simstores {

/// Simulation-run parameters. The paper runs 600 wall-clock seconds and
/// averages 3 executions; closed-loop virtual-time runs converge much
/// faster, so shorter defaults are used and the bench harnesses read
/// APMBENCH_SIM_SECONDS / APMBENCH_SIM_SEEDS to raise them.
struct SimRunConfig {
  double duration_seconds = 20.0;
  double warmup_seconds = 2.0;
  uint64_t seed = 1;
  /// 0 = closed loop at maximum sustainable throughput (the paper's main
  /// mode). Non-zero = open-loop Poisson arrivals at this aggregate rate
  /// (Figures 15/16: 50%-95% of maximum).
  double arrival_rate_ops_sec = 0.0;
};

/// Outcome of one simulated benchmark run.
struct SimResult {
  double throughput_ops_sec = 0.0;
  /// Latency (microseconds) per operation kind.
  std::array<Histogram, 3> latency_us;
  std::array<uint64_t, 3> completed{};
  uint64_t total_completed = 0;
  uint64_t events = 0;
  /// Busy fraction of each modeled resource (name, busy server-seconds /
  /// (run length * servers)) — identifies the bottleneck of a run.
  std::vector<std::pair<std::string, double>> utilization;

  const Histogram& latency(OpKind kind) const {
    return latency_us[static_cast<size_t>(kind)];
  }
  double MeanLatencyMs(OpKind kind) const {
    const Histogram& h = latency(kind);
    return h.count() == 0 ? 0.0 : h.Mean() / 1000.0;
  }
};

/// Runs `model_name` ("cassandra", ..., "mysql") on the modeled cluster
/// under the given workload; one seed per call. Fails on unknown models
/// or scan workloads against scan-less systems.
Status RunSimulation(const std::string& model_name,
                     const ClusterParams& cluster,
                     const WorkloadSpec& workload,
                     const SimRunConfig& config, SimResult* result);

/// Averages `seeds` runs (seed, seed+1, ...), merging latency histograms.
Status RunSimulationSeeds(const std::string& model_name,
                          const ClusterParams& cluster,
                          const WorkloadSpec& workload,
                          const SimRunConfig& config, int seeds,
                          SimResult* result);

}  // namespace apmbench::simstores

#endif  // APMBENCH_SIMSTORES_RUNNER_H_
