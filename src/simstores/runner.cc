#include "simstores/runner.h"

#include <memory>
#include <unordered_set>
#include <utility>

namespace apmbench::simstores {

namespace {

class OpExecution;

/// Shared state of one simulation run.
struct RunState {
  sim::Simulator* sim = nullptr;
  SystemModel* model = nullptr;
  const WorkloadSpec* workload = nullptr;
  SimRunConfig config;
  Random rng{1};
  SimResult* result = nullptr;
  bool closed_loop = true;
  /// Operations still in flight; whatever the run leaves unfinished is
  /// reclaimed after the event loop stops.
  std::unordered_set<OpExecution*> live;

  OpKind SampleKind() {
    double u = rng.NextDouble();
    if (u < workload->read) return OpKind::kRead;
    u -= workload->read;
    if (u < workload->scan) return OpKind::kScan;
    return OpKind::kInsert;
  }

  void Record(OpKind kind, double latency_seconds) {
    if (sim->now() < config.warmup_seconds) return;
    auto index = static_cast<size_t>(kind);
    result->latency_us[index].Add(
        static_cast<uint64_t>(latency_seconds * 1e6));
    // Throughput counts only completions inside the measurement window;
    // the drain period past `duration` contributes latency samples only.
    if (sim->now() <= config.duration_seconds) {
      result->completed[index]++;
      result->total_completed++;
    }
  }
};

/// Executes one operation's OpPlan stage by stage, then (in closed-loop
/// mode) issues the connection's next operation.
class OpExecution {
 public:
  OpExecution(RunState* state, OpKind kind)
      : state_(state), kind_(kind), start_(state->sim->now()) {
    state->live.insert(this);
    state->model->PlanOp(kind, &state->rng, &plan_);
    for (const SubRequest& bg : plan_.background) {
      bg.resource->RequestBackground(bg.seconds);
    }
  }

  void Run() { RunStage(0); }

 private:
  void RunStage(size_t index) {
    if (index >= plan_.stages.size()) {
      Finish();
      return;
    }
    const Stage& stage = plan_.stages[index];
    if (stage.parallel.empty()) {
      AfterParallel(index);
      return;
    }
    remaining_ = stage.parallel.size();
    for (const SubRequest& sub : stage.parallel) {
      sub.resource->Request(sub.seconds, [this, index]() {
        if (--remaining_ == 0) AfterParallel(index);
      });
    }
  }

  void AfterParallel(size_t index) {
    const Stage& stage = plan_.stages[index];
    if (stage.fixed_delay > 0) {
      state_->sim->Schedule(stage.fixed_delay,
                            [this, index]() { RunStage(index + 1); });
    } else {
      RunStage(index + 1);
    }
  }

  void Finish() {
    state_->Record(kind_, state_->sim->now() - start_);
    RunState* state = state_;
    bool closed_loop = state_->closed_loop;
    state->live.erase(this);
    delete this;
    if (closed_loop &&
        state->sim->now() < state->config.duration_seconds) {
      auto* next = new OpExecution(state, state->SampleKind());
      next->Run();
    }
  }

  RunState* state_;
  OpKind kind_;
  sim::Time start_;
  OpPlan plan_;
  size_t remaining_ = 0;
};

}  // namespace

Status RunSimulation(const std::string& model_name,
                     const ClusterParams& cluster,
                     const WorkloadSpec& workload,
                     const SimRunConfig& config, SimResult* result) {
  std::unique_ptr<SystemModel> model = CreateModel(model_name);
  if (model == nullptr) {
    return Status::InvalidArgument("unknown system model: " + model_name);
  }
  if (workload.scan > 0 && !model->SupportsScans()) {
    return Status::NotSupported(model_name +
                                " does not support scan workloads");
  }
  if (config.duration_seconds <= config.warmup_seconds) {
    return Status::InvalidArgument("duration must exceed warmup");
  }

  SimContext context;
  model->Setup(&context, cluster, workload);

  RunState state;
  state.sim = context.simulator();
  state.model = model.get();
  state.workload = &workload;
  state.config = config;
  state.rng = Random(config.seed);
  state.result = result;
  state.closed_loop = config.arrival_rate_ops_sec <= 0;

  *result = SimResult();

  // Must outlive RunUntil below: scheduled arrival events re-enter it.
  std::function<void()> arrive;
  if (state.closed_loop) {
    int connections = model->TotalConnections(cluster);
    for (int c = 0; c < connections; c++) {
      // Small start jitter avoids a lockstep start transient.
      double jitter = state.rng.NextDouble() * 1e-3;
      context.simulator()->Schedule(jitter, [&state]() {
        auto* op = new OpExecution(&state, state.SampleKind());
        op->Run();
      });
    }
  } else {
    // Open loop: self-rescheduling Poisson arrivals until the end of the
    // run.
    double rate = config.arrival_rate_ops_sec;
    arrive = [&state, rate, &arrive]() {
      auto* op = new OpExecution(&state, state.SampleKind());
      op->Run();
      double gap = state.rng.Exponential(1.0 / rate);
      if (state.sim->now() + gap < state.config.duration_seconds) {
        state.sim->Schedule(gap, arrive);
      }
    };
    context.simulator()->Schedule(state.rng.Exponential(1.0 / rate), arrive);
  }

  context.simulator()->RunUntil(config.duration_seconds);
  // Let in-flight operations drain a little so open-loop runs do not
  // censor the slowest requests.
  context.simulator()->RunUntil(config.duration_seconds +
                                config.warmup_seconds);

  // Reclaim operations that were still queued when the clock stopped
  // (their pending resource callbacks die with the SimContext below and
  // can never fire).
  for (OpExecution* op : state.live) {
    delete op;
  }
  state.live.clear();

  double measured_window =
      config.duration_seconds - config.warmup_seconds;
  result->throughput_ops_sec =
      static_cast<double>(result->total_completed) / measured_window;
  result->events = context.simulator()->events_processed();
  for (const auto& resource : context.resources()) {
    double capacity =
        config.duration_seconds * static_cast<double>(resource->servers());
    result->utilization.emplace_back(
        resource->name(),
        capacity > 0 ? resource->busy_seconds() / capacity : 0.0);
  }
  return Status::OK();
}

Status RunSimulationSeeds(const std::string& model_name,
                          const ClusterParams& cluster,
                          const WorkloadSpec& workload,
                          const SimRunConfig& config, int seeds,
                          SimResult* result) {
  if (seeds < 1) seeds = 1;
  *result = SimResult();
  double throughput_sum = 0;
  for (int i = 0; i < seeds; i++) {
    SimRunConfig seeded = config;
    seeded.seed = config.seed + static_cast<uint64_t>(i);
    SimResult one;
    APM_RETURN_IF_ERROR(
        RunSimulation(model_name, cluster, workload, seeded, &one));
    throughput_sum += one.throughput_ops_sec;
    for (size_t k = 0; k < result->latency_us.size(); k++) {
      result->latency_us[k].Merge(one.latency_us[k]);
      result->completed[k] += one.completed[k];
    }
    result->total_completed += one.total_completed;
    result->events += one.events;
  }
  result->throughput_ops_sec = throughput_sum / seeds;
  return Status::OK();
}

}  // namespace apmbench::simstores
