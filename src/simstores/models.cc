#include <algorithm>
#include <string>

#include "cluster/routing.h"
#include "common/logging.h"
#include "simstores/calibration.h"
#include "simstores/model.h"

namespace apmbench::simstores {

ClusterParams ClusterParams::ClusterM(int num_nodes) {
  ClusterParams params;
  params.num_nodes = num_nodes;
  params.cores_per_node = 8;
  params.ram_gb = 16.0;
  params.disks_per_node = 2;
  params.connections_per_node = 128;
  params.records_per_node = 10e6;
  params.disk_bound = false;
  return params;
}

ClusterParams ClusterParams::ClusterD(int num_nodes) {
  ClusterParams params;
  params.num_nodes = num_nodes;
  params.cores_per_node = 4;
  params.ram_gb = 4.0;
  params.disks_per_node = 1;
  params.connections_per_node = 8;  // 2 per core
  params.records_per_node = 150e6 / num_nodes;
  params.disk_bound = true;
  return params;
}

WorkloadSpec WorkloadSpec::Preset(const std::string& name) {
  WorkloadSpec spec;
  spec.name = name;
  if (name == "R") {
    spec.read = 0.95;
    spec.scan = 0.0;
    spec.insert = 0.05;
  } else if (name == "RW") {
    spec.read = 0.50;
    spec.scan = 0.0;
    spec.insert = 0.50;
  } else if (name == "W") {
    spec.read = 0.01;
    spec.scan = 0.0;
    spec.insert = 0.99;
  } else if (name == "RS") {
    spec.read = 0.47;
    spec.scan = 0.47;
    spec.insert = 0.06;
  } else if (name == "RSW") {
    spec.read = 0.25;
    spec.scan = 0.25;
    spec.insert = 0.50;
  } else {
    APM_CHECK(false && "unknown workload preset");
  }
  return spec;
}

namespace {

using namespace calib;

/// Shared plumbing: per-node CPU (and, on Cluster D, disk) resources.
class NodeModelBase : public SystemModel {
 protected:
  void BuildNodes(SimContext* context, int cpu_servers) {
    for (int i = 0; i < cluster_.num_nodes; i++) {
      cpus_.push_back(context->MakeResource(
          "cpu" + std::to_string(i), cpu_servers));
      disks_.push_back(context->MakeResource(
          "disk" + std::to_string(i), cluster_.disks_per_node));
    }
  }

  int UniformNode(Random* rng) const {
    return static_cast<int>(rng->Uniform(
        static_cast<uint64_t>(cluster_.num_nodes)));
  }

  /// Random-read disk time: seek plus a 4 KB transfer.
  double DiskReadTime() const {
    return cluster_.disk_seek_seconds +
           4096.0 / (cluster_.disk_mb_per_second * 1e6);
  }

  /// Amortized sequential-write disk time for one record, given a write
  /// amplification (log + flush + compaction rewrites).
  double SequentialWriteTime(double amplification) const {
    return workload_.record_bytes * amplification /
           (cluster_.disk_mb_per_second * 1e6);
  }

  ClusterParams cluster_;
  WorkloadSpec workload_;
  std::vector<sim::Resource*> cpus_;
  std::vector<sim::Resource*> disks_;
};

/// Cassandra: LSM engine behind a balanced token ring. Every core serves
/// requests; writes are cheap (commit log + memtable) with compaction
/// debt in the background; a range slice stays on the token-owning node.
/// With replication_factor > 1 (the paper's future-work experiment),
/// writes fan out to every replica at consistency level ONE and reads go
/// to a single replica.
class CassandraSim final : public NodeModelBase {
 public:
  const char* name() const override { return "cassandra"; }

  void Setup(SimContext* context, const ClusterParams& cluster,
             const WorkloadSpec& workload) override {
    cluster_ = cluster;
    workload_ = workload;
    replication_ = std::min(std::max(1, cluster.replication_factor),
                            cluster.num_nodes);
    BuildNodes(context, cluster.cores_per_node);
  }

  int TotalConnections(const ClusterParams& cluster) const override {
    return cluster.connections_per_node * cluster.num_nodes;
  }

  void PlanOp(OpKind kind, Random* rng, OpPlan* plan) override {
    int node = UniformNode(rng);
    // The contacted node coordinates; when it does not own the key it
    // forwards to the owner (extra CPU + LAN hop).
    bool forwarded =
        cluster_.num_nodes > 1 &&
        rng->NextDouble() <
            static_cast<double>(cluster_.num_nodes - 1) / cluster_.num_nodes;
    int coordinator = node;
    if (forwarded) node = UniformNode(rng);
    switch (kind) {
      case OpKind::kRead: {
        if (forwarded) {
          Stage* hop = plan->AddStage();
          hop->parallel.push_back({cpus_[coordinator], kCassandraCoordinatorCpu});
          hop->fixed_delay = cluster_.net_delay_seconds * 2;
        }
        Stage* stage = plan->AddStage();
        stage->parallel.push_back({cpus_[node], kCassandraReadCpu});
        if (cluster_.disk_bound && rng->NextDouble() > kCassandraHitRatioD) {
          stage->parallel.push_back({disks_[node], DiskReadTime()});
        }
        stage->fixed_delay = cluster_.net_delay_seconds * 2;
        break;
      }
      case OpKind::kInsert: {
        if (forwarded) {
          Stage* hop = plan->AddStage();
          hop->parallel.push_back({cpus_[coordinator], kCassandraCoordinatorCpu});
          hop->fixed_delay = cluster_.net_delay_seconds * 2;
        }
        // Consistency level ONE: the client waits for the first replica;
        // the ring-walk replicas apply the same write (and compaction
        // debt) concurrently.
        Stage* stage = plan->AddStage();
        stage->parallel.push_back({cpus_[node], kCassandraWriteCpu});
        stage->fixed_delay = cluster_.net_delay_seconds * 2;
        for (int r = 0; r < replication_; r++) {
          int replica = (node + r) % cluster_.num_nodes;
          if (r > 0) {
            plan->background.push_back({cpus_[replica], kCassandraWriteCpu});
          }
          plan->background.push_back({cpus_[replica], kCassandraWriteBgCpu});
          if (cluster_.disk_bound) {
            plan->background.push_back(
                {disks_[replica],
                 SequentialWriteTime(kLsmWriteAmplification)});
          }
        }
        break;
      }
      case OpKind::kScan: {
        // A range slice is contiguous in token order, so the 50-key
        // window lives on one node; the coordinator pages through it in
        // sequential rounds (which is why scans cost ~4 reads).
        for (int round = 0; round < kCassandraScanRounds; round++) {
          Stage* stage = plan->AddStage();
          stage->parallel.push_back({cpus_[node], kCassandraReadCpu});
          stage->fixed_delay = cluster_.net_delay_seconds * 2;
        }
        break;
      }
    }
  }

 private:
  int replication_ = 1;
};

/// HBase: LSM on a replicated filesystem. Reads are expensive (layered
/// lookups through HDFS); writes land in the client-side buffer almost
/// always and in the memstore otherwise, with flush/compaction debt
/// queued behind foreground work — which is what drags read latency into
/// the hundreds of milliseconds under write-heavy mixes.
class HBaseSim final : public NodeModelBase {
 public:
  const char* name() const override { return "hbase"; }

  void Setup(SimContext* context, const ClusterParams& cluster,
             const WorkloadSpec& workload) override {
    cluster_ = cluster;
    workload_ = workload;
    BuildNodes(context, cluster.cores_per_node);
  }

  int TotalConnections(const ClusterParams& cluster) const override {
    return cluster.connections_per_node * cluster.num_nodes;
  }

  void PlanOp(OpKind kind, Random* rng, OpPlan* plan) override {
    int node = UniformNode(rng);
    switch (kind) {
      case OpKind::kRead: {
        Stage* stage = plan->AddStage();
        stage->parallel.push_back({cpus_[node], kHBaseReadCpu});
        if (cluster_.disk_bound && rng->NextDouble() > kHBaseHitRatioD) {
          stage->parallel.push_back({disks_[node], DiskReadTime()});
        }
        stage->fixed_delay = cluster_.net_delay_seconds * 2;
        break;
      }
      case OpKind::kInsert: {
        // Server-side work always happens eventually...
        plan->background.push_back({cpus_[node], kHBaseWriteBgCpu});
        if (cluster_.disk_bound) {
          plan->background.push_back(
              {disks_[node],
               SequentialWriteTime(kLsmWriteAmplification)});
        }
        // ...but the client only waits when its write buffer flushes.
        if (++insert_counter_ % kHBaseFlushEvery == 0) {
          Stage* stage = plan->AddStage();
          stage->parallel.push_back({cpus_[node], kHBaseWriteCpu});
          stage->fixed_delay = cluster_.net_delay_seconds * 2;
        } else {
          Stage* stage = plan->AddStage();
          stage->fixed_delay = kHBaseBufferedWriteDelay;
        }
        break;
      }
      case OpKind::kScan: {
        // Ordered regions: the scan stays on one region server.
        Stage* stage = plan->AddStage();
        stage->parallel.push_back(
            {cpus_[node], kHBaseReadCpu * kHBaseScanFactor});
        if (cluster_.disk_bound && rng->NextDouble() > kHBaseHitRatioD) {
          stage->parallel.push_back({disks_[node], DiskReadTime()});
        }
        stage->fixed_delay = cluster_.net_delay_seconds * 2;
        break;
      }
    }
  }

 private:
  uint64_t insert_counter_ = 0;
};

/// Voldemort: BDB B+tree behind a partition ring; the client pool caps
/// in-flight requests (Section 6), so per-node concurrency is tiny and
/// latencies stay at service time.
class VoldemortSim final : public NodeModelBase {
 public:
  const char* name() const override { return "voldemort"; }

  bool SupportsScans() const override { return false; }

  void Setup(SimContext* context, const ClusterParams& cluster,
             const WorkloadSpec& workload) override {
    cluster_ = cluster;
    workload_ = workload;
    BuildNodes(context, cluster.cores_per_node);
  }

  int TotalConnections(const ClusterParams& cluster) const override {
    // The client pool cap binds on both clusters; Cluster D ran far
    // fewer client threads (2 per core), which squeezes Voldemort's
    // effective in-flight requests further.
    if (cluster.disk_bound) {
      return 2 * cluster.num_nodes;
    }
    return kVoldemortConnectionsPerNode * cluster.num_nodes;
  }

  void PlanOp(OpKind kind, Random* rng, OpPlan* plan) override {
    int node = UniformNode(rng);
    Stage* stage = plan->AddStage();
    if (kind == OpKind::kRead) {
      stage->parallel.push_back({cpus_[node], kVoldemortReadCpu});
      if (cluster_.disk_bound &&
          rng->NextDouble() > kVoldemortHitRatioD) {
        stage->parallel.push_back({disks_[node], DiskReadTime()});
      }
    } else {
      stage->parallel.push_back({cpus_[node], kVoldemortWriteCpu});
      // A B+tree write dirties a random leaf: when the leaf is cold the
      // write-back path pays a (partially deferred) random I/O.
      if (cluster_.disk_bound &&
          rng->NextDouble() >
              kVoldemortHitRatioD +
                  (1 - kVoldemortHitRatioD) * (1 - kBTreeWritebackMissFactor)) {
        stage->parallel.push_back({disks_[node], DiskReadTime()});
      } else if (cluster_.disk_bound) {
        plan->background.push_back(
            {disks_[node], SequentialWriteTime(1.5)});
      }
    }
    stage->fixed_delay = cluster_.net_delay_seconds * 2;
  }
};

/// Redis: one single-threaded event loop per instance, sharded by the
/// Jedis ring. Keys route according to the ring's measured ownership
/// shares (imbalanced), and the sharded client stack caps total
/// in-flight requests.
class RedisSim final : public NodeModelBase {
 public:
  const char* name() const override { return "redis"; }

  void Setup(SimContext* context, const ClusterParams& cluster,
             const WorkloadSpec& workload) override {
    cluster_ = cluster;
    workload_ = workload;
    BuildNodes(context, /*cpu_servers=*/1);  // single-threaded
    cluster::JedisShardRing ring(cluster.num_nodes);
    shares_ = ring.OwnershipShares();
    cumulative_.resize(shares_.size());
    double acc = 0;
    for (size_t i = 0; i < shares_.size(); i++) {
      acc += shares_[i];
      cumulative_[i] = acc;
    }
  }

  int TotalConnections(const ClusterParams& cluster) const override {
    (void)cluster;
    return kRedisTotalConnections;
  }

  void PlanOp(OpKind kind, Random* rng, OpPlan* plan) override {
    if (kind == OpKind::kScan) {
      // ShardedJedis cannot fan a range out; the scan runs against the
      // sorted-set index of the shard owning the start key.
      int node = JedisNode(rng);
      Stage* stage = plan->AddStage();
      stage->parallel.push_back({cpus_[node], kRedisScanCpu});
      stage->fixed_delay = kRedisClientDelay;
      return;
    }
    int node = JedisNode(rng);
    Stage* stage = plan->AddStage();
    stage->parallel.push_back({cpus_[node], kRedisOpCpu});
    stage->fixed_delay = kRedisClientDelay;
  }

 private:
  int JedisNode(Random* rng) const {
    double u = rng->NextDouble();
    auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    size_t index = static_cast<size_t>(it - cumulative_.begin());
    if (index >= cumulative_.size()) index = cumulative_.size() - 1;
    return static_cast<int>(index);
  }

  std::vector<double> shares_;
  std::vector<double> cumulative_;
};

/// VoltDB: 6 serial execution sites per host. Cross-node transactions
/// (fraction (n-1)/n of requests under uniform keys) pay a cluster-wide
/// ordering hop — a serial resource — plus a network round trip, which
/// with the synchronous YCSB client erases all multi-node gains.
class VoltSim final : public NodeModelBase {
 public:
  const char* name() const override { return "voltdb"; }

  void Setup(SimContext* context, const ClusterParams& cluster,
             const WorkloadSpec& workload) override {
    cluster_ = cluster;
    workload_ = workload;
    BuildNodes(context, kVoltSitesPerHost);
    coordinator_ = context->MakeResource("global-coordinator", 1);
  }

  int TotalConnections(const ClusterParams& cluster) const override {
    return cluster.connections_per_node * cluster.num_nodes;
  }

  void PlanOp(OpKind kind, Random* rng, OpPlan* plan) override {
    int node = UniformNode(rng);
    if (kind == OpKind::kScan) {
      // Multi-partition transaction: fences every site everywhere.
      Stage* coord = plan->AddStage();
      coord->parallel.push_back({coordinator_, kVoltGlobalCoordCpu});
      coord->fixed_delay = kVoltRemoteRtt;
      Stage* stage = plan->AddStage();
      for (int i = 0; i < cluster_.num_nodes; i++) {
        for (int s = 0; s < kVoltSitesPerHost; s++) {
          stage->parallel.push_back({cpus_[i], kVoltScanSiteCpu});
        }
      }
      stage->fixed_delay = cluster_.net_delay_seconds * 2;
      return;
    }
    bool remote =
        cluster_.num_nodes > 1 &&
        rng->NextDouble() <
            static_cast<double>(cluster_.num_nodes - 1) / cluster_.num_nodes;
    if (remote) {
      Stage* coord = plan->AddStage();
      coord->parallel.push_back({coordinator_, kVoltGlobalCoordCpu});
      coord->fixed_delay = kVoltRemoteRtt;
    }
    Stage* stage = plan->AddStage();
    stage->parallel.push_back({cpus_[node], kVoltOpCpu});
    stage->fixed_delay = cluster_.net_delay_seconds * 2;
  }

 private:
  sim::Resource* coordinator_ = nullptr;
};

/// MySQL: InnoDB B+trees sharded by key hash (well balanced). Reads and
/// writes cost buffer-pool CPU; scans stream `key >= start` with no
/// LIMIT. Scans serialize on a per-shard resource that inserts also
/// touch, so the insert-heavy scan mix (RSW) hits next-key-lock collapse.
class MySqlSim final : public NodeModelBase {
 public:
  const char* name() const override { return "mysql"; }

  void Setup(SimContext* context, const ClusterParams& cluster,
             const WorkloadSpec& workload) override {
    cluster_ = cluster;
    workload_ = workload;
    BuildNodes(context, cluster.cores_per_node);
    for (int i = 0; i < cluster.num_nodes; i++) {
      locks_.push_back(
          context->MakeResource("lock" + std::to_string(i), 1));
    }
    // Three regimes (Sections 5.4/5.5): small clusters stream the range
    // efficiently; beyond two nodes the unlimited query drags the shard
    // tail; and when the mix is insert-heavy, next-key locking between
    // the tail scan and inserts serializes the shard.
    scan_contended_ = cluster.num_nodes > 2 ||
                      (workload.scan > 0 &&
                       workload.insert >= kMySqlInsertHeavyThreshold);
    double base = (workload.scan > 0 &&
                   workload.insert >= kMySqlInsertHeavyThreshold)
                      ? kMySqlScanInsertHeavyCpu
                      : kMySqlScanCpuSmall;
    scan_cpu_ = base;
    if (cluster.num_nodes > 2) scan_cpu_ *= kMySqlScanTailFactor;
  }

  int TotalConnections(const ClusterParams& cluster) const override {
    return std::min(kMySqlConnectionsPerNode * cluster.num_nodes,
                    kMySqlMaxConnections);
  }

  void PlanOp(OpKind kind, Random* rng, OpPlan* plan) override {
    int node = UniformNode(rng);
    switch (kind) {
      case OpKind::kRead: {
        Stage* stage = plan->AddStage();
        stage->parallel.push_back({cpus_[node], kMySqlReadCpu});
        stage->fixed_delay = kMySqlClientDelay;
        break;
      }
      case OpKind::kInsert: {
        // Inserts briefly take the shard's index/lock path, then do the
        // B+tree + binlog work.
        Stage* lock_stage = plan->AddStage();
        lock_stage->parallel.push_back({locks_[node], 5e-6});
        Stage* stage = plan->AddStage();
        stage->parallel.push_back({cpus_[node], kMySqlWriteCpu});
        stage->fixed_delay = kMySqlClientDelay;
        break;
      }
      case OpKind::kScan: {
        Stage* stage = plan->AddStage();
        if (scan_contended_) {
          // The tail scan occupies the shard's scan/lock path for its
          // whole duration; inserts queue behind it.
          stage->parallel.push_back({locks_[node], scan_cpu_});
          stage->parallel.push_back({cpus_[node], scan_cpu_ * 0.5});
        } else {
          stage->parallel.push_back({cpus_[node], scan_cpu_});
        }
        stage->fixed_delay = kMySqlClientDelay;
        break;
      }
    }
  }

 private:
  std::vector<sim::Resource*> locks_;
  double scan_cpu_ = kMySqlScanCpuSmall;
  bool scan_contended_ = false;
};

}  // namespace

std::unique_ptr<SystemModel> CreateModel(const std::string& name) {
  if (name == "cassandra") return std::make_unique<CassandraSim>();
  if (name == "hbase") return std::make_unique<HBaseSim>();
  if (name == "voldemort") return std::make_unique<VoldemortSim>();
  if (name == "redis") return std::make_unique<RedisSim>();
  if (name == "voltdb") return std::make_unique<VoltSim>();
  if (name == "mysql") return std::make_unique<MySqlSim>();
  return nullptr;
}

}  // namespace apmbench::simstores
