#ifndef APMBENCH_SIMSTORES_MODEL_H_
#define APMBENCH_SIMSTORES_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "sim/simulator.h"

namespace apmbench::simstores {

/// Hardware model of one benchmark cluster (Section 3 of the paper).
struct ClusterParams {
  int num_nodes = 1;
  int cores_per_node = 8;
  double ram_gb = 16.0;
  int disks_per_node = 2;  // RAID-0 pair on Cluster M
  double disk_seek_seconds = 0.008;
  double disk_mb_per_second = 80.0;
  /// One-way client<->server network delay (GbE LAN).
  double net_delay_seconds = 0.00005;
  /// Client connections per server node (128 on Cluster M; 2 per core on
  /// Cluster D).
  int connections_per_node = 128;
  /// Records loaded per node (10M on Cluster M; Cluster D holds 150M
  /// total over 8 nodes).
  double records_per_node = 10e6;
  /// True for the disk-bound Cluster D configuration.
  bool disk_bound = false;
  /// Replicas per key (the paper runs 1; Section 8 lists measuring the
  /// impact of replication as future work — the Cassandra model honors
  /// this, writing to all replicas and reading from one).
  int replication_factor = 1;

  /// Cluster M: 16 nodes, 2x quad-core Xeon, 16 GB RAM, 2x74 GB RAID-0.
  static ClusterParams ClusterM(int num_nodes);
  /// Cluster D: 24 nodes, 2x dual-core Xeon, 4 GB RAM, one disk.
  static ClusterParams ClusterD(int num_nodes);
};

/// Operation mix (Table 1) plus record geometry.
struct WorkloadSpec {
  std::string name;
  double read = 0.95;
  double scan = 0.0;
  double insert = 0.05;
  int scan_length = 50;
  double record_bytes = 75.0;

  /// Table 1 preset by name (R, RW, W, RS, RSW).
  static WorkloadSpec Preset(const std::string& name);
};

enum class OpKind { kRead = 0, kScan = 1, kInsert = 2 };

/// One resource demand within a stage.
struct SubRequest {
  sim::Resource* resource;
  double seconds;
};

/// Stages run sequentially; a stage's subrequests run in parallel and the
/// stage completes when all of them do, after which `fixed_delay` elapses
/// (used for network round trips and client-side work).
struct Stage {
  std::vector<SubRequest> parallel;
  double fixed_delay = 0;
};

/// The full resource plan of one operation, plus background work enqueued
/// at issue time that the operation does not wait for (flush/compaction
/// debt, client-buffered writes).
struct OpPlan {
  std::vector<Stage> stages;
  std::vector<SubRequest> background;

  void Clear() {
    stages.clear();
    background.clear();
  }
  Stage* AddStage() {
    stages.emplace_back();
    return &stages.back();
  }
};

/// Owns the simulator and the resources a model builds.
class SimContext {
 public:
  SimContext() = default;

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  sim::Simulator* simulator() { return &sim_; }

  sim::Resource* MakeResource(const std::string& name, int servers) {
    resources_.push_back(
        std::make_unique<sim::Resource>(&sim_, name, servers));
    return resources_.back().get();
  }

  const std::vector<std::unique_ptr<sim::Resource>>& resources() const {
    return resources_;
  }

 private:
  sim::Simulator sim_;
  std::vector<std::unique_ptr<sim::Resource>> resources_;
};

/// Queueing/cost model of one of the six systems. A model builds its
/// resources (node CPUs, disks, serial sites, coordinators, locks) in
/// Setup and then translates each operation into an OpPlan. All
/// mechanism-relevant behavior — routing imbalance, fan-out, serial
/// bottlenecks, cache misses — lives here; the runner is system-agnostic.
class SystemModel {
 public:
  virtual ~SystemModel() = default;

  virtual const char* name() const = 0;

  virtual void Setup(SimContext* context, const ClusterParams& cluster,
                     const WorkloadSpec& workload) = 0;

  /// Total concurrent client connections the paper's client setup
  /// achieved against this system (several clients were capped by
  /// connection-pool limits; see Section 6).
  virtual int TotalConnections(const ClusterParams& cluster) const = 0;

  /// True when the system's YCSB binding supports scans.
  virtual bool SupportsScans() const { return true; }

  virtual void PlanOp(OpKind kind, Random* rng, OpPlan* plan) = 0;
};

/// Instantiates a model by paper name (cassandra, hbase, voldemort,
/// redis, voltdb, mysql).
std::unique_ptr<SystemModel> CreateModel(const std::string& name);

}  // namespace apmbench::simstores

#endif  // APMBENCH_SIMSTORES_MODEL_H_
