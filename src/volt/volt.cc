#include "volt/volt.h"

#include <algorithm>
#include <atomic>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/fanout.h"
#include "common/hash.h"

namespace apmbench::volt {

VoltEngine::Site::Site() {
  Task* stub = new Task();
  head_.store(stub, std::memory_order_relaxed);
  tail_ = stub;
  thread_ = std::thread(&Site::Loop, this);
}

VoltEngine::Site::~Site() {
  stop_.store(true, std::memory_order_release);
  signal_.fetch_add(1, std::memory_order_release);
  signal_.notify_one();
  if (thread_.joinable()) thread_.join();
  // The loop drained the queue before exiting; free the last dummy node.
  delete tail_;
}

void VoltEngine::Site::Push(Task* task) {
  // Vyukov MPSC push: claim the head slot, then link the previous node to
  // us. Between the exchange and the store the chain has a gap the
  // consumer reads as "empty"; the signal bump below closes the race.
  Task* prev = head_.exchange(task, std::memory_order_acq_rel);
  prev->next.store(task, std::memory_order_release);
}

bool VoltEngine::Site::Pop(std::function<void()>* work) {
  Task* tail = tail_;
  Task* next = tail->next.load(std::memory_order_acquire);
  if (next == nullptr) return false;
  *work = std::move(next->work);
  // `next` becomes the new dummy node; the old one is fully ours.
  tail_ = next;
  delete tail;
  return true;
}

void VoltEngine::Site::Submit(std::function<void()> work) {
  Task* task = new Task();
  task->work = std::move(work);
  Push(task);
  signal_.fetch_add(1, std::memory_order_release);
  signal_.notify_one();
}

void VoltEngine::Site::Execute(const std::function<void()>& work) {
  std::atomic<bool> done{false};
  Submit([&work, &done]() {
    work();
    done.store(true, std::memory_order_release);
    done.notify_one();
  });
  done.wait(false, std::memory_order_acquire);
}

void VoltEngine::Site::Loop() {
  std::function<void()> work;
  for (;;) {
    // Read the eventcount before scanning the queue: a producer bumps it
    // only after its node is linked, so either we see the node now or the
    // count moves past `seq` and wait() returns immediately.
    const uint64_t seq = signal_.load(std::memory_order_acquire);
    bool ran = false;
    while (Pop(&work)) {
      work();
      work = nullptr;
      ran = true;
    }
    if (ran) continue;
    if (stop_.load(std::memory_order_acquire)) return;
    signal_.wait(seq, std::memory_order_acquire);
  }
}

namespace {
constexpr uint8_t kCmdPut = 1;
constexpr uint8_t kCmdDelete = 2;
}  // namespace

VoltEngine::VoltEngine(const Options& options) : options_(options) {
  int n = std::max(1, options.sites_per_host);
  sites_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; i++) {
    sites_.push_back(std::make_unique<Site>());
  }
}

Status VoltEngine::Recover() {
  if (options_.command_log_path.empty()) return Status::OK();
  Env* env = Env::Default();
  if (env->FileExists(options_.command_log_path)) {
    std::string contents;
    APM_RETURN_IF_ERROR(
        env->ReadFileToString(options_.command_log_path, &contents));
    recovering_ = true;
    size_t offset = 0;
    while (offset + 8 <= contents.size()) {
      uint32_t masked = DecodeFixed32(contents.data() + offset);
      uint32_t length = DecodeFixed32(contents.data() + offset + 4);
      if (offset + 8 + length > contents.size()) break;  // torn tail
      const char* data = contents.data() + offset + 8;
      if (UnmaskCrc(masked) != Crc32c(data, length)) break;
      Slice in(data, length);
      if (in.empty()) break;
      uint8_t op = static_cast<uint8_t>(in[0]);
      in.RemovePrefix(1);
      Slice key, value;
      if (!GetLengthPrefixedSlice(&in, &key) ||
          !GetLengthPrefixedSlice(&in, &value)) {
        break;
      }
      if (op == kCmdPut) {
        Put(key, value);
      } else if (op == kCmdDelete) {
        Delete(key);
      }
      offset += 8 + length;
    }
    recovering_ = false;
  }
  std::unique_ptr<WritableFile> log;
  APM_RETURN_IF_ERROR(
      env->NewAppendableFile(options_.command_log_path, &log));
  command_log_ = std::make_unique<GroupCommitLog>(std::move(log));
  return Status::OK();
}

Status VoltEngine::LogCommand(uint8_t op, const Slice& key,
                              const Slice& value) {
  if (recovering_ || command_log_ == nullptr) return Status::OK();
  std::string payload;
  payload.push_back(static_cast<char>(op));
  PutLengthPrefixedSlice(&payload, key);
  PutLengthPrefixedSlice(&payload, value);
  std::string framed;
  PutFixed32(&framed, MaskCrc(Crc32c(payload.data(), payload.size())));
  PutFixed32(&framed, static_cast<uint32_t>(payload.size()));
  framed.append(payload);
  // Concurrent transactions' records share one write (and one fsync in
  // synchronous mode) via group commit; VoltDB's command log batches the
  // same way.
  return command_log_->Append(framed, options_.sync_command_log);
}

VoltEngine::~VoltEngine() = default;

int VoltEngine::PartitionOf(const Slice& key) const {
  uint32_t hash = MurmurHash3_32(key.data(), key.size(), 0x5f3759df);
  return static_cast<int>(hash % sites_.size());
}

Status VoltEngine::Put(const Slice& key, const Slice& value) {
  APM_RETURN_IF_ERROR(LogCommand(kCmdPut, key, value));
  Site* site = sites_[static_cast<size_t>(PartitionOf(key))].get();
  std::string k = key.ToString();
  std::string v = value.ToString();
  site->Execute([&]() { site->rows[k] = v; });
  single_partition_txns_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status VoltEngine::Get(const Slice& key, std::string* value) {
  Site* site = sites_[static_cast<size_t>(PartitionOf(key))].get();
  std::string k = key.ToString();
  bool found = false;
  site->Execute([&]() {
    auto it = site->rows.find(k);
    if (it != site->rows.end()) {
      *value = it->second;
      found = true;
    }
  });
  single_partition_txns_.fetch_add(1, std::memory_order_relaxed);
  return found ? Status::OK() : Status::NotFound();
}

Status VoltEngine::Delete(const Slice& key) {
  APM_RETURN_IF_ERROR(LogCommand(kCmdDelete, key, Slice()));
  Site* site = sites_[static_cast<size_t>(PartitionOf(key))].get();
  std::string k = key.ToString();
  bool erased = false;
  site->Execute([&]() { erased = site->rows.erase(k) > 0; });
  single_partition_txns_.fetch_add(1, std::memory_order_relaxed);
  return erased ? Status::OK() : Status::NotFound();
}

Status VoltEngine::Scan(const Slice& start, int count,
                        std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  // Multi-partition transaction: every site runs the range fragment and
  // the coordinator merges. All sites are fenced for the duration, which
  // is exactly what makes multi-partition work expensive in this model.
  std::string start_key = start.ToString();
  std::vector<std::vector<std::pair<std::string, std::string>>> partials(
      sites_.size());
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = sites_.size();
  for (size_t i = 0; i < sites_.size(); i++) {
    Site* site = sites_[i].get();
    auto* partial = &partials[i];
    site->Submit([&, site, partial]() {
      auto it = site->rows.lower_bound(start_key);
      for (int taken = 0; it != site->rows.end() && taken < count;
           ++it, ++taken) {
        partial->emplace_back(it->first, it->second);
      }
      std::lock_guard<std::mutex> lock(done_mu);
      remaining--;
      done_cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  // K-way merge of the per-partition sorted fragments, stopping at
  // `count` instead of sorting every candidate.
  MergeSortedRuns(
      &partials, static_cast<size_t>(count), /*dedup=*/false,
      [](const auto& kv) -> const std::string& { return kv.first; }, out);
  multi_partition_txns_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

VoltEngine::Stats VoltEngine::GetStats() {
  Stats stats;
  stats.single_partition_txns =
      single_partition_txns_.load(std::memory_order_relaxed);
  stats.multi_partition_txns =
      multi_partition_txns_.load(std::memory_order_relaxed);
  for (auto& site : sites_) {
    size_t n = 0;
    site->Execute([&]() { n = site->rows.size(); });
    stats.rows_per_partition.push_back(n);
  }
  return stats;
}

}  // namespace apmbench::volt
