#ifndef APMBENCH_VOLT_VOLT_H_
#define APMBENCH_VOLT_VOLT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/group_commit.h"
#include "common/slice.h"
#include "common/status.h"

namespace apmbench::volt {

/// Engine configuration. VoltDB calls its partitions "sites"; the paper
/// ran 6 sites per host as recommended for its platform.
struct Options {
  int sites_per_host = 6;
  /// When set, every mutating stored procedure is appended to a command
  /// log (VoltDB's durability mechanism) and replayed on construction.
  std::string command_log_path;
  /// fsync the command log per transaction (VoltDB's synchronous mode).
  bool sync_command_log = false;
};

/// An H-Store/VoltDB-architecture in-memory engine: the key space is hash
/// partitioned across "sites", each site executes its transactions
/// serially on its own thread with no locks or latches, and transactions
/// are stored procedures routed to the partition that owns their key.
/// Single-partition procedures (get/put/delete by key) run on exactly one
/// site; scans are multi-partition transactions that fence every site, the
/// behavior that makes them expensive — and that makes the synchronous
/// YCSB client scale poorly, as the paper observed.
///
/// Thread-safety: all public methods are safe to call concurrently (after
/// Recover() returns). Partitions stay serial by design, but submission is
/// lock-free: each site has a Vyukov-style MPSC queue, so concurrent
/// clients enqueue with one atomic exchange instead of contending on a
/// mutex, and the site thread sleeps on a C++20 atomic wait when idle.
/// Command-log appends from concurrent transactions are group-committed.
class VoltEngine {
 public:
  struct Stats {
    uint64_t single_partition_txns = 0;
    uint64_t multi_partition_txns = 0;
    std::vector<size_t> rows_per_partition;
  };

  explicit VoltEngine(const Options& options);
  ~VoltEngine();

  /// Replays the command log (if configured and present). Called by the
  /// store after construction; exposed for tests.
  Status Recover();

  VoltEngine(const VoltEngine&) = delete;
  VoltEngine& operator=(const VoltEngine&) = delete;

  /// Synchronous stored-procedure calls (the paper's YCSB client used
  /// synchronous invocation; see §6 "VoltDB").
  Status Put(const Slice& key, const Slice& value);
  Status Get(const Slice& key, std::string* value);
  Status Delete(const Slice& key);

  /// Multi-partition transaction: collects up to `count` records with
  /// key >= start across all partitions, in key order.
  Status Scan(const Slice& start, int count,
              std::vector<std::pair<std::string, std::string>>* out);

  int partition_count() const { return static_cast<int>(sites_.size()); }
  /// Partition owning `key` (exposed for routing tests).
  int PartitionOf(const Slice& key) const;

  Stats GetStats();

 private:
  /// One single-threaded execution site. Producers hand work over through
  /// a lock-free multi-producer/single-consumer linked queue (Vyukov's
  /// design: push is one exchange + one store, never a lock, never a
  /// wait); the site thread is the only consumer and parks on an
  /// atomic-wait eventcount when the queue runs dry.
  class Site {
   public:
    Site();
    /// Joins the site thread. Callers must not Submit concurrently with
    /// destruction (the engine's sites outlive every client call).
    ~Site();

    /// Enqueues `work` and returns immediately; work items run serially
    /// in submission order. Lock-free.
    void Submit(std::function<void()> work);
    /// Enqueues `work` and blocks until it has run (atomic wait/notify,
    /// no mutex/condvar handshake).
    void Execute(const std::function<void()>& work);

    /// Single-threaded table with a primary-key tree index.
    std::map<std::string, std::string, std::less<>> rows;

   private:
    struct Task {
      std::function<void()> work;
      std::atomic<Task*> next{nullptr};
    };

    void Push(Task* task);
    /// Consumer only: moves the next task's work into `*work`. Returns
    /// false when the queue looks empty (including the transient window
    /// where a producer has swung head_ but not yet linked its node; that
    /// producer's signal bump re-wakes the consumer afterwards).
    bool Pop(std::function<void()>* work);
    void Loop();

    /// Producers push here; tail_ is touched only by the site thread. The
    /// queue always holds one dummy node (the current tail) so producers
    /// never contend with the consumer on the same pointer.
    std::atomic<Task*> head_;
    Task* tail_;

    /// Eventcount: bumped after every push; the consumer re-reads it
    /// before sleeping so a wakeup between "queue empty" and "wait" is
    /// never lost.
    std::atomic<uint64_t> signal_{0};
    std::atomic<bool> stop_{false};
    std::thread thread_;
  };

  Status LogCommand(uint8_t op, const Slice& key, const Slice& value);

  Options options_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::unique_ptr<GroupCommitLog> command_log_;
  bool recovering_ = false;
  std::atomic<uint64_t> single_partition_txns_{0};
  std::atomic<uint64_t> multi_partition_txns_{0};
};

}  // namespace apmbench::volt

#endif  // APMBENCH_VOLT_VOLT_H_
