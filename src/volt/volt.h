#ifndef APMBENCH_VOLT_VOLT_H_
#define APMBENCH_VOLT_VOLT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/slice.h"
#include "common/status.h"

namespace apmbench::volt {

/// Engine configuration. VoltDB calls its partitions "sites"; the paper
/// ran 6 sites per host as recommended for its platform.
struct Options {
  int sites_per_host = 6;
  /// When set, every mutating stored procedure is appended to a command
  /// log (VoltDB's durability mechanism) and replayed on construction.
  std::string command_log_path;
  /// fsync the command log per transaction (VoltDB's synchronous mode).
  bool sync_command_log = false;
};

/// An H-Store/VoltDB-architecture in-memory engine: the key space is hash
/// partitioned across "sites", each site executes its transactions
/// serially on its own thread with no locks or latches, and transactions
/// are stored procedures routed to the partition that owns their key.
/// Single-partition procedures (get/put/delete by key) run on exactly one
/// site; scans are multi-partition transactions that fence every site, the
/// behavior that makes them expensive — and that makes the synchronous
/// YCSB client scale poorly, as the paper observed.
class VoltEngine {
 public:
  struct Stats {
    uint64_t single_partition_txns = 0;
    uint64_t multi_partition_txns = 0;
    std::vector<size_t> rows_per_partition;
  };

  explicit VoltEngine(const Options& options);
  ~VoltEngine();

  /// Replays the command log (if configured and present). Called by the
  /// store after construction; exposed for tests.
  Status Recover();

  VoltEngine(const VoltEngine&) = delete;
  VoltEngine& operator=(const VoltEngine&) = delete;

  /// Synchronous stored-procedure calls (the paper's YCSB client used
  /// synchronous invocation; see §6 "VoltDB").
  Status Put(const Slice& key, const Slice& value);
  Status Get(const Slice& key, std::string* value);
  Status Delete(const Slice& key);

  /// Multi-partition transaction: collects up to `count` records with
  /// key >= start across all partitions, in key order.
  Status Scan(const Slice& start, int count,
              std::vector<std::pair<std::string, std::string>>* out);

  int partition_count() const { return static_cast<int>(sites_.size()); }
  /// Partition owning `key` (exposed for routing tests).
  int PartitionOf(const Slice& key) const;

  Stats GetStats();

 private:
  /// One single-threaded execution site.
  class Site {
   public:
    Site();
    ~Site();

    /// Enqueues `work` and returns immediately; work items run serially
    /// in submission order.
    void Submit(std::function<void()> work);
    /// Enqueues `work` and blocks until it has run.
    void Execute(const std::function<void()>& work);

    /// Single-threaded table with a primary-key tree index.
    std::map<std::string, std::string, std::less<>> rows;

   private:
    void Loop();

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stop_ = false;
    std::thread thread_;
  };

  Status LogCommand(uint8_t op, const Slice& key, const Slice& value);

  Options options_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::mutex log_mu_;
  std::unique_ptr<WritableFile> command_log_;
  bool recovering_ = false;
  std::atomic<uint64_t> single_partition_txns_{0};
  std::atomic<uint64_t> multi_partition_txns_{0};
};

}  // namespace apmbench::volt

#endif  // APMBENCH_VOLT_VOLT_H_
