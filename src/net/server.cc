#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

namespace apmbench::net {

namespace {

constexpr int kListenBacklog = 511;
constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

/// Per-connection state. The owning event loop is the only thread that
/// touches the fd, the epoll registration, and the decoder; everything
/// under `mu` is shared with workers. The fd is closed exactly once, by
/// the owning loop, which also removes the connection from its map — a
/// worker never holds a raw fd, so an abrupt client disconnect can
/// neither leak the descriptor nor let a stale worker write into a
/// recycled one.
struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}

  const int fd;
  EventLoop* loop = nullptr;
  FrameDecoder decoder;  // event-loop thread only

  std::mutex mu;
  /// Decoded requests awaiting execution, in arrival order.
  std::deque<std::pair<uint64_t, Request>> pending;
  /// True while the connection is queued for / being drained by a worker.
  bool scheduled = false;
  /// True when max_pipeline stopped the read path; the worker clears it
  /// and wakes the loop once the backlog drains.
  bool read_paused = false;
  /// Encoded responses not yet written to the socket. Per-connection, so
  /// a half-written response to a vanished client can never bleed into
  /// another connection's stream.
  std::string outbuf;
  bool want_write = false;  // EPOLLOUT armed
  bool closed = false;
  /// Set with `closed` when the loop must flush-then-close (not used yet;
  /// teardown currently drops undelivered output).
  bool notified = false;  // already in the loop's notify queue
};

/// One epoll event loop: its own epoll set, a wakeup eventfd, and the
/// connections it owns.
struct Server::EventLoop {
  int index = 0;
  int epoll_fd = -1;
  int wake_fd = -1;

  std::mutex mu;
  std::unordered_map<int, std::shared_ptr<Connection>> conns;
  /// Connections whose workers produced output or resumed reading.
  std::deque<std::shared_ptr<Connection>> notify_queue;
};

Server::Server(const ServerOptions& options, ycsb::DB* db)
    : options_(options), db_(db) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  stopping_.store(false);

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Status::IOError(std::string("bind: ") + strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (listen(listen_fd_, kListenBacklog) != 0) {
    Status s = Status::IOError(std::string("listen: ") + strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  const int nloops = options_.event_threads > 0 ? options_.event_threads : 1;
  for (int i = 0; i < nloops; i++) {
    auto loop = std::make_unique<EventLoop>();
    loop->index = i;
    loop->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
      Status s = Status::IOError("epoll/eventfd setup failed");
      if (loop->epoll_fd >= 0) close(loop->epoll_fd);
      if (loop->wake_fd >= 0) close(loop->wake_fd);
      close(listen_fd_);
      listen_fd_ = -1;
      for (auto& l : loops_) {
        close(l->epoll_fd);
        close(l->wake_fd);
      }
      loops_.clear();
      running_.store(false);
      return s;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake_fd;
    epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    if (i == 0) {
      // Loop 0 owns the listening socket (level-triggered is fine: the
      // accept handler drains the backlog each wakeup).
      ev.events = EPOLLIN;
      ev.data.fd = listen_fd_;
      epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
    }
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_) {
    loop_threads_.emplace_back(&Server::EventLoopMain, this, loop.get());
  }
  const int nworkers = options_.worker_threads > 0 ? options_.worker_threads
                                                   : 1;
  for (int i = 0; i < nworkers; i++) {
    worker_threads_.emplace_back(&Server::WorkerMain, this);
  }
  return Status::OK();
}

void Server::Stop() {
  if (!running_.load() || stopping_.exchange(true)) {
    // Already stopped or another Stop in flight; wait for threads below
    // only from the first caller.
    if (!running_.load()) return;
  }
  // Wake every loop; they close their connections and exit.
  for (auto& loop : loops_) {
    uint64_t one = 1;
    ssize_t ignored = write(loop->wake_fd, &one, sizeof(one));
    (void)ignored;
  }
  for (auto& t : loop_threads_) {
    if (t.joinable()) t.join();
  }
  loop_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_queue_.clear();
  }
  work_cv_.notify_all();
  for (auto& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  worker_threads_.clear();
  for (auto& loop : loops_) {
    close(loop->epoll_fd);
    close(loop->wake_fd);
  }
  loops_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false);
}

Server::Stats Server::GetStats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.closed = closed_.load(std::memory_order_relaxed);
  s.open_connections = open_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  return s;
}

void Server::EventLoopMain(EventLoop* loop) {
  std::vector<epoll_event> events(256);
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = epoll_wait(loop->epoll_fd, events.data(),
                       static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; i++) {
      const epoll_event& ev = events[i];
      if (ev.data.fd == loop->wake_fd) {
        uint64_t drain;
        while (read(loop->wake_fd, &drain, sizeof(drain)) > 0) {
        }
        // Handle worker notifications: flush new output, resume paused
        // reads.
        for (;;) {
          std::shared_ptr<Connection> conn;
          {
            std::lock_guard<std::mutex> lock(loop->mu);
            if (loop->notify_queue.empty()) break;
            conn = std::move(loop->notify_queue.front());
            loop->notify_queue.pop_front();
          }
          bool resume_read = false;
          {
            std::lock_guard<std::mutex> lock(conn->mu);
            conn->notified = false;
            if (conn->closed) continue;
            resume_read = !conn->read_paused && conn->decoder.error().empty();
          }
          FlushWrite(loop, conn);
          // The worker may have lifted backpressure: parse whatever is
          // already buffered and pull fresh bytes off the socket.
          if (resume_read) DrainRead(loop, conn);
        }
        continue;
      }
      if (ev.data.fd == listen_fd_) {
        AcceptAll(loop);
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(loop->mu);
        auto it = loop->conns.find(ev.data.fd);
        if (it == loop->conns.end()) continue;  // already torn down
        conn = it->second;
      }
      if (ev.events & (EPOLLERR | EPOLLHUP)) {
        Teardown(loop, conn, /*protocol_error=*/false);
        continue;
      }
      if (ev.events & EPOLLOUT) FlushWrite(loop, conn);
      if (ev.events & (EPOLLIN | EPOLLRDHUP)) DrainRead(loop, conn);
    }
  }
  // Shutdown: close every connection this loop owns.
  std::vector<std::shared_ptr<Connection>> leftover;
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    for (auto& [fd, conn] : loop->conns) leftover.push_back(conn);
  }
  for (auto& conn : leftover) Teardown(loop, conn, false);
}

void Server::AcceptAll(EventLoop* accept_loop) {
  (void)accept_loop;
  for (;;) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      // A queued connection reset before accept is not our problem.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EAGAIN or transient accept error: wait for next event
    }
    if (stopping_.load(std::memory_order_acquire)) {
      close(fd);
      return;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd);
    EventLoop* target =
        loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) %
               loops_.size()]
            .get();
    conn->loop = target;
    {
      std::lock_guard<std::mutex> lock(target->mu);
      target->conns.emplace(fd, conn);
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    ev.data.fd = fd;
    if (epoll_ctl(target->epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      std::lock_guard<std::mutex> lock(target->mu);
      target->conns.erase(fd);
      close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::DrainRead(EventLoop* loop,
                       const std::shared_ptr<Connection>& conn) {
  char buf[kReadChunk];
  for (;;) {
    // Extract every complete frame already buffered, unless backpressure
    // pauses the pipeline.
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->closed) return;
        if (conn->pending.size() >= options_.max_pipeline) {
          conn->read_paused = true;
          return;  // leave unread bytes in the socket: TCP backpressure
        }
      }
      Frame frame;
      FrameDecoder::Result r = conn->decoder.Next(&frame);
      if (r == FrameDecoder::Result::kNeedMore) break;
      if (r == FrameDecoder::Result::kError) {
        Teardown(loop, conn, /*protocol_error=*/true);
        return;
      }
      Request request;
      if (!DecodeRequest(frame, &request)) {
        Teardown(loop, conn, /*protocol_error=*/true);
        return;
      }
      requests_.fetch_add(1, std::memory_order_relaxed);
      bool schedule = false;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->pending.emplace_back(frame.request_id, std::move(request));
        if (!conn->scheduled) {
          conn->scheduled = true;
          schedule = true;
        }
      }
      if (schedule) EnqueueWork(conn);
    }
    ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n),
                          std::memory_order_relaxed);
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      // Orderly close from the peer; undelivered pipeline output is
      // dropped with the connection.
      Teardown(loop, conn, /*protocol_error=*/false);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    Teardown(loop, conn, /*protocol_error=*/false);  // e.g. ECONNRESET
    return;
  }
}

void Server::FlushWrite(EventLoop* loop,
                        const std::shared_ptr<Connection>& conn) {
  std::unique_lock<std::mutex> lock(conn->mu);
  if (conn->closed) return;
  while (!conn->outbuf.empty()) {
    ssize_t n = send(conn->fd, conn->outbuf.data(), conn->outbuf.size(),
                     MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
      conn->outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!conn->want_write) {
        conn->want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP | EPOLLOUT | EPOLLET;
        ev.data.fd = conn->fd;
        epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
      }
      return;
    }
    // Peer vanished mid-response (EPIPE/ECONNRESET). The half-written
    // bytes die with this connection's private buffer.
    lock.unlock();
    Teardown(loop, conn, /*protocol_error=*/false);
    return;
  }
  if (conn->want_write) {
    conn->want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    ev.data.fd = conn->fd;
    epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  }
}

void Server::Teardown(EventLoop* loop,
                      const std::shared_ptr<Connection>& conn,
                      bool protocol_error) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    conn->pending.clear();
    conn->outbuf.clear();
    conn->outbuf.shrink_to_fit();
  }
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    loop->conns.erase(conn->fd);
  }
  epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  closed_.fetch_add(1, std::memory_order_relaxed);
  open_.fetch_sub(1, std::memory_order_relaxed);
  if (protocol_error) bad_frames_.fetch_add(1, std::memory_order_relaxed);
}

void Server::EnqueueWork(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_queue_.push_back(conn);
  }
  work_cv_.notify_one();
}

void Server::NotifyLoop(const std::shared_ptr<Connection>& conn) {
  EventLoop* loop = conn->loop;
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    loop->notify_queue.push_back(conn);
  }
  uint64_t one = 1;
  ssize_t ignored = write(loop->wake_fd, &one, sizeof(one));
  (void)ignored;
}

void Server::ExecuteRequest(const Request& request, Response* response) {
  *response = Response();
  switch (request.op) {
    case Opcode::kPing:
      break;
    case Opcode::kRead:
      response->status =
          db_->Read(request.table, Slice(request.key), &response->record);
      break;
    case Opcode::kScan:
      response->status = db_->ScanKeyed(request.table, Slice(request.key),
                                        request.count, &response->records);
      break;
    case Opcode::kInsert:
      response->status =
          db_->Insert(request.table, Slice(request.key), request.record);
      break;
    case Opcode::kUpdate:
      response->status =
          db_->Update(request.table, Slice(request.key), request.record);
      break;
    case Opcode::kDelete:
      response->status = db_->Delete(request.table, Slice(request.key));
      break;
    case Opcode::kDiskUsage:
      response->status = db_->DiskUsage(&response->disk_bytes);
      break;
  }
}

void Server::WorkerMain() {
  for (;;) {
    std::shared_ptr<Connection> conn;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               !work_queue_.empty();
      });
      if (work_queue_.empty()) return;  // stopping
      conn = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    // Drain this connection's pipeline: take the whole backlog at once
    // (the server-side batch), execute in order, then hand the encoded
    // responses back to the event loop in one notification.
    for (;;) {
      std::deque<std::pair<uint64_t, Request>> batch;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->pending.empty() || conn->closed) {
          conn->scheduled = false;
          break;
        }
        batch.swap(conn->pending);
      }
      batches_.fetch_add(1, std::memory_order_relaxed);
      std::string out;
      Response response;
      for (const auto& [request_id, request] : batch) {
        ExecuteRequest(request, &response);
        EncodeResponse(request.op, request_id, response, &out);
        responses_.fetch_add(1, std::memory_order_relaxed);
      }
      bool notify = false;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->closed) {
          conn->outbuf.append(out);
          // Lift backpressure once the backlog has drained.
          if (conn->read_paused &&
              conn->pending.size() < options_.max_pipeline / 2 + 1) {
            conn->read_paused = false;
          }
          if (!conn->notified) {
            conn->notified = true;
            notify = true;
          }
        }
      }
      if (notify) NotifyLoop(conn);
    }
  }
}

}  // namespace apmbench::net
