#ifndef APMBENCH_NET_SERVER_H_
#define APMBENCH_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"
#include "ycsb/db.h"

namespace apmbench::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port readable via `port()` after
  /// Start (tests and single-machine benches never collide).
  int port = 0;
  /// Event-loop threads. Each owns an epoll set; connections are assigned
  /// round-robin at accept and stay on their loop for life.
  int event_threads = 1;
  /// Worker threads executing decoded requests against the store. One
  /// worker drains one connection at a time (responses stay in request
  /// order — the pipelining contract); concurrent workers on different
  /// connections are what feed the engines' group commit.
  int worker_threads = 4;
  /// Per-connection cap on decoded-but-unexecuted requests. Beyond it the
  /// server stops reading from that socket (TCP backpressure) until the
  /// backlog drains — load shedding for a client that pipelines faster
  /// than the store executes.
  size_t max_pipeline = 1024;
};

/// An epoll-based (edge-triggered) binary-protocol server hosting one
/// ycsb::DB behind net/protocol framing. See docs/serving.md.
class Server {
 public:
  /// `db` must be thread-safe and outlive the server.
  Server(const ServerOptions& options, ycsb::DB* db);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  Status Start();
  /// Closes every connection (dropping undelivered output and pending
  /// requests), stops all threads, and releases every fd. Idempotent.
  void Stop();

  /// The bound port (after Start).
  int port() const { return port_; }

  struct Stats {
    uint64_t accepted = 0;
    uint64_t closed = 0;
    uint64_t open_connections = 0;
    uint64_t requests = 0;
    uint64_t responses = 0;
    /// Connections dropped for protocol violations (bad frame, bad
    /// request payload).
    uint64_t bad_frames = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    /// Worker drain rounds; requests / batches > 1 means pipelined
    /// requests were executed in server-side batches.
    uint64_t batches = 0;
  };
  Stats GetStats() const;

 private:
  struct Connection;
  struct EventLoop;

  void EventLoopMain(EventLoop* loop);
  void WorkerMain();

  void AcceptAll(EventLoop* loop);
  void DrainRead(EventLoop* loop, const std::shared_ptr<Connection>& conn);
  void FlushWrite(EventLoop* loop, const std::shared_ptr<Connection>& conn);
  void Teardown(EventLoop* loop, const std::shared_ptr<Connection>& conn,
                bool protocol_error);
  /// Queues `conn` for a worker (caller must have set conn->scheduled).
  void EnqueueWork(const std::shared_ptr<Connection>& conn);
  /// Wakes `loop` to flush `conn`'s output / resume reading.
  void NotifyLoop(const std::shared_ptr<Connection>& conn);
  void ExecuteRequest(const Request& request, Response* response);

  const ServerOptions options_;
  ycsb::DB* const db_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> loop_threads_;
  std::atomic<uint64_t> next_loop_{0};

  // Worker pool: connections with pending requests, one entry per
  // scheduled connection.
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Connection>> work_queue_;
  std::vector<std::thread> worker_threads_;

  // Stats (relaxed atomics; read via GetStats).
  std::atomic<uint64_t> accepted_{0}, closed_{0}, open_{0}, requests_{0},
      responses_{0}, bad_frames_{0}, bytes_in_{0}, bytes_out_{0},
      batches_{0};
};

}  // namespace apmbench::net

#endif  // APMBENCH_NET_SERVER_H_
