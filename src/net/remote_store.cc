#include "net/remote_store.h"

#include <utility>

#include "common/status.h"

namespace apmbench::net {

Status RemoteStore::Open(const ClientOptions& options,
                         std::unique_ptr<RemoteStore>* store) {
  std::unique_ptr<RemoteStore> s(new RemoteStore(options));
  APM_RETURN_IF_ERROR(s->client_.Connect());
  Request ping;
  ping.op = Opcode::kPing;
  Response response;
  APM_RETURN_IF_ERROR(s->client_.Call(ping, &response));
  *store = std::move(s);
  return Status::OK();
}

Status RemoteStore::Read(const std::string& table, const Slice& key,
                         ycsb::Record* record) {
  Request request;
  request.op = Opcode::kRead;
  request.table = table;
  request.key = key.ToString();
  Response response;
  Status s = client_.Call(request, &response);
  if (s.ok()) *record = std::move(response.record);
  return s;
}

Status RemoteStore::ScanKeyed(const std::string& table,
                              const Slice& start_key, int count,
                              std::vector<ycsb::KeyedRecord>* records) {
  Request request;
  request.op = Opcode::kScan;
  request.table = table;
  request.key = start_key.ToString();
  request.count = count;
  Response response;
  Status s = client_.Call(request, &response);
  if (s.ok()) *records = std::move(response.records);
  return s;
}

Status RemoteStore::Insert(const std::string& table, const Slice& key,
                           const ycsb::Record& record) {
  Request request;
  request.op = Opcode::kInsert;
  request.table = table;
  request.key = key.ToString();
  request.record = record;
  Response response;
  return client_.Call(request, &response);
}

Status RemoteStore::Update(const std::string& table, const Slice& key,
                           const ycsb::Record& record) {
  Request request;
  request.op = Opcode::kUpdate;
  request.table = table;
  request.key = key.ToString();
  request.record = record;
  Response response;
  return client_.Call(request, &response);
}

Status RemoteStore::Delete(const std::string& table, const Slice& key) {
  Request request;
  request.op = Opcode::kDelete;
  request.table = table;
  request.key = key.ToString();
  Response response;
  return client_.Call(request, &response);
}

Status RemoteStore::DiskUsage(uint64_t* bytes) {
  Request request;
  request.op = Opcode::kDiskUsage;
  Response response;
  Status s = client_.Call(request, &response);
  if (s.ok()) *bytes = response.disk_bytes;
  return s;
}

}  // namespace apmbench::net
