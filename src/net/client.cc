#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace apmbench::net {

/// One socket plus its bookkeeping. Writes are serialized under
/// `send_mu` (a frame must hit the stream contiguously); the reader
/// thread owns the receive side and resolves pending calls by
/// request_id.
struct Client::Conn {
  int fd = -1;
  std::thread reader;

  std::mutex send_mu;

  std::mutex mu;
  std::condition_variable cv;  // signaled when in-flight count drops
  std::unordered_map<uint64_t, std::shared_ptr<Pending>> pending;
  bool dead = false;
  Status death_status;
};

Status Client::Pending::Wait() {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [this] { return done; });
  return transport;
}

Client::Client(const ClientOptions& options) : options_(options) {}

Client::~Client() { Close(); }

Status Client::Connect() {
  if (connected_) return Status::InvalidArgument("client already connected");
  const int n = options_.connections > 0 ? options_.connections : 1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host " + options_.host);
  }
  for (int i = 0; i < n; i++) {
    int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      Close();
      return Status::IOError(std::string("socket: ") + strerror(errno));
    }
    int r;
    do {
      r = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (r != 0 && errno == EINTR);
    if (r != 0) {
      Status s = Status::IOError(std::string("connect: ") + strerror(errno));
      close(fd);
      Close();
      return s;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conns_.push_back(std::move(conn));
  }
  for (auto& conn : conns_) {
    conn->reader = std::thread(&Client::ReaderMain, this, conn.get());
  }
  connected_ = true;
  return Status::OK();
}

void Client::Close() {
  for (auto& conn : conns_) {
    // shutdown() unblocks the reader's recv; the reader then fails any
    // stragglers and exits.
    if (conn->fd >= 0) shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
    FailAll(conn.get(), Status::IOError("client closed"));
    if (conn->fd >= 0) {
      close(conn->fd);
      conn->fd = -1;
    }
  }
  conns_.clear();
  connected_ = false;
}

std::shared_ptr<Client::Pending> Client::AsyncCall(const Request& request) {
  auto handle = std::make_shared<Pending>();
  if (conns_.empty()) {
    std::lock_guard<std::mutex> lock(handle->mu);
    handle->done = true;
    handle->transport = Status::InvalidArgument("client not connected");
    return handle;
  }
  Conn* conn = conns_[next_conn_.fetch_add(1, std::memory_order_relaxed) %
                      conns_.size()]
                   .get();
  const uint64_t id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    conn->cv.wait(lock, [&] {
      return conn->dead || conn->pending.size() < options_.max_pipeline;
    });
    if (conn->dead) {
      std::lock_guard<std::mutex> hl(handle->mu);
      handle->done = true;
      handle->transport = conn->death_status;
      return handle;
    }
    conn->pending.emplace(id, handle);
  }
  std::string wire;
  EncodeRequest(request, id, &wire);
  bool write_failed = false;
  {
    std::lock_guard<std::mutex> lock(conn->send_mu);
    size_t sent = 0;
    while (sent < wire.size()) {
      ssize_t n = send(conn->fd, wire.data() + sent, wire.size() - sent,
                       MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        write_failed = true;
        break;
      }
      sent += static_cast<size_t>(n);
    }
  }
  if (write_failed) {
    FailAll(conn, Status::IOError(std::string("send: ") + strerror(errno)));
  }
  return handle;
}

Status Client::Call(const Request& request, Response* response) {
  auto handle = AsyncCall(request);
  Status transport = handle->Wait();
  if (!transport.ok()) return transport;
  *response = handle->response();
  return response->status;
}

void Client::ReaderMain(Conn* conn) {
  FrameDecoder decoder;
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      FailAll(conn, Status::IOError(std::string("recv: ") + strerror(errno)));
      return;
    }
    if (n == 0) {
      FailAll(conn, Status::IOError("connection closed by server"));
      return;
    }
    decoder.Feed(buf, static_cast<size_t>(n));
    Frame frame;
    for (;;) {
      FrameDecoder::Result r = decoder.Next(&frame);
      if (r == FrameDecoder::Result::kNeedMore) break;
      if (r == FrameDecoder::Result::kError) {
        FailAll(conn, Status::Corruption("bad response frame: " +
                                         decoder.error()));
        return;
      }
      std::shared_ptr<Pending> handle;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        auto it = conn->pending.find(frame.request_id);
        if (it != conn->pending.end()) {
          handle = std::move(it->second);
          conn->pending.erase(it);
        }
      }
      conn->cv.notify_all();
      if (handle == nullptr) continue;  // duplicate/unknown id: ignore
      Response response;
      const bool ok = DecodeResponse(frame, &response);
      std::lock_guard<std::mutex> lock(handle->mu);
      handle->done = true;
      if (ok) {
        handle->response_ = std::move(response);
      } else {
        handle->transport = Status::Corruption("malformed response payload");
      }
      handle->cv.notify_all();
    }
  }
}

void Client::FailAll(Conn* conn, const Status& status) {
  std::unordered_map<uint64_t, std::shared_ptr<Pending>> orphans;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead) return;
    conn->dead = true;
    conn->death_status = status;
    orphans.swap(conn->pending);
  }
  conn->cv.notify_all();
  for (auto& [id, handle] : orphans) {
    std::lock_guard<std::mutex> lock(handle->mu);
    handle->done = true;
    handle->transport = status;
    handle->cv.notify_all();
  }
}

}  // namespace apmbench::net
