#ifndef APMBENCH_NET_CLIENT_H_
#define APMBENCH_NET_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"

namespace apmbench::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Sockets to open; requests are spread round-robin. Many workload
  /// threads can multiplex pipelined requests over few sockets.
  int connections = 1;
  /// Cap on in-flight requests per socket; `Call` blocks past it.
  size_t max_pipeline = 128;
};

/// An asynchronous binary-protocol client: N sockets, each with a reader
/// thread matching responses to callers by request_id, so any number of
/// threads can pipeline requests concurrently over the same socket.
class Client {
 public:
  /// A pending remote call. Wait() blocks until the response (or the
  /// connection's failure) arrives.
  class Pending {
   public:
    /// Returns the transport status; on OK, `response()` is valid and
    /// carries the remote operation's own status.
    Status Wait();
    const Response& response() const { return response_; }

   private:
    friend class Client;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status transport;
    Response response_;
  };

  explicit Client(const ClientOptions& options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Opens all sockets and starts reader threads.
  Status Connect();
  /// Fails outstanding calls, closes sockets, joins readers. Idempotent.
  void Close();

  /// Sends `request` on one of the sockets; the returned handle resolves
  /// when the reply arrives. Blocks only when the chosen socket already
  /// has max_pipeline requests in flight.
  std::shared_ptr<Pending> AsyncCall(const Request& request);

  /// AsyncCall + Wait. On transport failure returns that error; otherwise
  /// returns the remote status and fills `response`.
  Status Call(const Request& request, Response* response);

 private:
  struct Conn;

  void ReaderMain(Conn* conn);
  /// Fails every pending call on `conn` and marks it dead.
  void FailAll(Conn* conn, const Status& status);

  const ClientOptions options_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<uint64_t> next_conn_{0};
  std::atomic<uint64_t> next_request_id_{1};
  bool connected_ = false;
};

}  // namespace apmbench::net

#endif  // APMBENCH_NET_CLIENT_H_
