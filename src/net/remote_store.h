#ifndef APMBENCH_NET_REMOTE_STORE_H_
#define APMBENCH_NET_REMOTE_STORE_H_

#include <memory>
#include <string>

#include "net/client.h"
#include "ycsb/db.h"

namespace apmbench::net {

/// A ycsb::DB whose operations execute on a remote `store_server` over
/// the binary protocol. Thread-safe: workload threads share the client's
/// pipelined sockets, which is exactly how the closed-loop serving bench
/// drives hundreds of connections.
class RemoteStore : public ycsb::DB {
 public:
  /// Connects and pings the server; returns the transport error on
  /// failure.
  static Status Open(const ClientOptions& options,
                     std::unique_ptr<RemoteStore>* store);

  Status Read(const std::string& table, const Slice& key,
              ycsb::Record* record) override;
  Status ScanKeyed(const std::string& table, const Slice& start_key,
                   int count,
                   std::vector<ycsb::KeyedRecord>* records) override;
  Status Insert(const std::string& table, const Slice& key,
                const ycsb::Record& record) override;
  Status Update(const std::string& table, const Slice& key,
                const ycsb::Record& record) override;
  Status Delete(const std::string& table, const Slice& key) override;
  Status DiskUsage(uint64_t* bytes) override;

 private:
  explicit RemoteStore(const ClientOptions& options) : client_(options) {}

  Client client_;
};

}  // namespace apmbench::net

#endif  // APMBENCH_NET_REMOTE_STORE_H_
