#include "net/protocol.h"

#include "common/coding.h"
#include "common/crc32.h"

namespace apmbench::net {

namespace {

/// Rebuilds a Status from its wire code + message.
Status StatusFromWire(uint8_t code, std::string message) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(message));
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(message));
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case Status::Code::kIOError:
      return Status::IOError(std::move(message));
    case Status::Code::kNotSupported:
      return Status::NotSupported(std::move(message));
    case Status::Code::kBusy:
      return Status::Busy(std::move(message));
    case Status::Code::kAborted:
      return Status::Aborted(std::move(message));
  }
  return Status::Corruption("unknown wire status code");
}

}  // namespace

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kPing:
      return "PING";
    case Opcode::kRead:
      return "READ";
    case Opcode::kScan:
      return "SCAN";
    case Opcode::kInsert:
      return "INSERT";
    case Opcode::kUpdate:
      return "UPDATE";
    case Opcode::kDelete:
      return "DELETE";
    case Opcode::kDiskUsage:
      return "DISK_USAGE";
  }
  return "UNKNOWN";
}

bool IsValidOpcode(uint8_t raw) {
  return raw >= static_cast<uint8_t>(Opcode::kPing) &&
         raw <= static_cast<uint8_t>(Opcode::kDiskUsage);
}

void AppendFrame(Opcode op, uint64_t request_id, const Slice& payload,
                 std::string* out) {
  out->push_back(static_cast<char>(kFrameMagic));
  out->push_back(static_cast<char>(kProtocolVersion));
  out->push_back(static_cast<char>(op));
  out->push_back(0);  // flags
  PutFixed64(out, request_id);
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload.data(), payload.size());
  PutFixed32(out, MaskCrc(Crc32c(payload.data(), payload.size())));
}

FrameDecoder::Result FrameDecoder::Fail(const std::string& message) {
  failed_ = true;
  error_ = message;
  return Result::kError;
}

void FrameDecoder::Feed(const char* data, size_t n) {
  if (failed_) return;  // connection is doomed; don't grow the buffer
  // Compact once the consumed prefix dominates, keeping the buffer
  // proportional to the unparsed tail rather than the connection's
  // lifetime traffic.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

FrameDecoder::Result FrameDecoder::Next(Frame* frame) {
  if (failed_) return Result::kError;
  const size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return Result::kNeedMore;
  const char* h = buf_.data() + pos_;
  const uint8_t magic = static_cast<uint8_t>(h[0]);
  const uint8_t version = static_cast<uint8_t>(h[1]);
  const uint8_t opcode = static_cast<uint8_t>(h[2]);
  const uint8_t flags = static_cast<uint8_t>(h[3]);
  if (magic != kFrameMagic) return Fail("bad frame magic");
  if (version != kProtocolVersion) {
    return Fail("unsupported protocol version " + std::to_string(version));
  }
  if (!IsValidOpcode(opcode)) {
    return Fail("unknown opcode " + std::to_string(opcode));
  }
  if (flags != 0) return Fail("nonzero reserved flags");
  const uint32_t payload_len = DecodeFixed32(h + 12);
  if (payload_len > kMaxPayloadBytes) {
    return Fail("oversized payload length " + std::to_string(payload_len));
  }
  const size_t total =
      kFrameHeaderBytes + payload_len + kFrameTrailerBytes;
  if (avail < total) return Result::kNeedMore;
  const char* payload = h + kFrameHeaderBytes;
  const uint32_t expected =
      UnmaskCrc(DecodeFixed32(payload + payload_len));
  if (Crc32c(payload, payload_len) != expected) {
    return Fail("payload CRC mismatch");
  }
  frame->op = static_cast<Opcode>(opcode);
  frame->request_id = DecodeFixed64(h + 4);
  frame->payload.assign(payload, payload_len);
  pos_ += total;
  return Result::kFrame;
}

void EncodeRequest(const Request& request, uint64_t request_id,
                   std::string* out) {
  std::string payload;
  switch (request.op) {
    case Opcode::kPing:
    case Opcode::kDiskUsage:
      break;
    case Opcode::kRead:
    case Opcode::kDelete:
      PutLengthPrefixedSlice(&payload, Slice(request.table));
      PutLengthPrefixedSlice(&payload, Slice(request.key));
      break;
    case Opcode::kScan:
      PutLengthPrefixedSlice(&payload, Slice(request.table));
      PutLengthPrefixedSlice(&payload, Slice(request.key));
      PutVarint32(&payload, static_cast<uint32_t>(request.count));
      break;
    case Opcode::kInsert:
    case Opcode::kUpdate: {
      PutLengthPrefixedSlice(&payload, Slice(request.table));
      PutLengthPrefixedSlice(&payload, Slice(request.key));
      std::string encoded;
      ycsb::EncodeRecord(request.record, &encoded);
      payload.append(encoded);
      break;
    }
  }
  AppendFrame(request.op, request_id, Slice(payload), out);
}

bool DecodeRequest(const Frame& frame, Request* request) {
  *request = Request();
  request->op = frame.op;
  Slice in(frame.payload);
  switch (frame.op) {
    case Opcode::kPing:
    case Opcode::kDiskUsage:
      return in.empty();
    case Opcode::kRead:
    case Opcode::kDelete: {
      Slice table, key;
      if (!GetLengthPrefixedSlice(&in, &table) ||
          !GetLengthPrefixedSlice(&in, &key) || !in.empty()) {
        return false;
      }
      request->table = table.ToString();
      request->key = key.ToString();
      return true;
    }
    case Opcode::kScan: {
      Slice table, key;
      uint32_t count;
      if (!GetLengthPrefixedSlice(&in, &table) ||
          !GetLengthPrefixedSlice(&in, &key) || !GetVarint32(&in, &count) ||
          !in.empty()) {
        return false;
      }
      request->table = table.ToString();
      request->key = key.ToString();
      request->count = static_cast<int>(count);
      return true;
    }
    case Opcode::kInsert:
    case Opcode::kUpdate: {
      Slice table, key;
      if (!GetLengthPrefixedSlice(&in, &table) ||
          !GetLengthPrefixedSlice(&in, &key)) {
        return false;
      }
      request->table = table.ToString();
      request->key = key.ToString();
      return ycsb::DecodeRecord(in, &request->record);
    }
  }
  return false;
}

void EncodeResponse(Opcode op, uint64_t request_id, const Response& response,
                    std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(response.status.code()));
  PutLengthPrefixedSlice(&payload, Slice(response.status.message()));
  if (response.status.ok()) {
    switch (op) {
      case Opcode::kRead: {
        std::string encoded;
        ycsb::EncodeRecord(response.record, &encoded);
        payload.append(encoded);
        break;
      }
      case Opcode::kScan: {
        PutVarint32(&payload,
                    static_cast<uint32_t>(response.records.size()));
        std::string encoded;
        for (const auto& keyed : response.records) {
          PutLengthPrefixedSlice(&payload, Slice(keyed.key));
          ycsb::EncodeRecord(keyed.record, &encoded);
          PutLengthPrefixedSlice(&payload, Slice(encoded));
        }
        break;
      }
      case Opcode::kDiskUsage:
        PutFixed64(&payload, response.disk_bytes);
        break;
      default:
        break;
    }
  }
  AppendFrame(op, request_id, Slice(payload), out);
}

bool DecodeResponse(const Frame& frame, Response* response) {
  *response = Response();
  Slice in(frame.payload);
  if (in.empty()) return false;
  const uint8_t code = static_cast<uint8_t>(in[0]);
  if (code > static_cast<uint8_t>(Status::Code::kAborted)) return false;
  in.RemovePrefix(1);
  Slice message;
  if (!GetLengthPrefixedSlice(&in, &message)) return false;
  response->status = StatusFromWire(code, message.ToString());
  if (!response->status.ok()) return in.empty();
  switch (frame.op) {
    case Opcode::kRead:
      return ycsb::DecodeRecord(in, &response->record);
    case Opcode::kScan: {
      uint32_t n;
      if (!GetVarint32(&in, &n)) return false;
      // Each record needs at least one byte of payload, so a count larger
      // than the remaining bytes is malformed — reject before reserving.
      if (n > in.size()) return false;
      response->records.reserve(n);
      for (uint32_t i = 0; i < n; i++) {
        Slice key, encoded;
        ycsb::KeyedRecord keyed;
        if (!GetLengthPrefixedSlice(&in, &key) ||
            !GetLengthPrefixedSlice(&in, &encoded) ||
            !ycsb::DecodeRecord(encoded, &keyed.record)) {
          return false;
        }
        keyed.key = key.ToString();
        response->records.push_back(std::move(keyed));
      }
      return in.empty();
    }
    case Opcode::kDiskUsage:
      return GetFixed64(&in, &response->disk_bytes) && in.empty();
    default:
      return in.empty();
  }
}

}  // namespace apmbench::net
