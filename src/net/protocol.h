#ifndef APMBENCH_NET_PROTOCOL_H_
#define APMBENCH_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "ycsb/db.h"

namespace apmbench::net {

/// The wire protocol between `net::Client` and `net::Server`: a versioned,
/// length-prefixed binary framing (the shape of the memcached/Redis binary
/// protocols) carrying the YCSB `DB` operations. Every message is one
/// frame (little-endian):
///
///   offset 0   u8   magic        0xA7
///          1   u8   version      kProtocolVersion
///          2   u8   opcode
///          3   u8   flags        (reserved, must be 0)
///          4   u64  request_id   client-chosen; echoed in the reply so
///                                pipelined responses can be correlated
///          12  u32  payload_len  must be <= kMaxPayloadBytes
///          16  ...  payload
///   16+len     u32  masked CRC-32C of the payload
///
/// Request payloads (all strings length-prefixed with a varint):
///   kPing, kDiskUsage   (empty)
///   kRead, kDelete      table, key
///   kScan               table, start_key, varint32 count
///   kInsert, kUpdate    table, key, record (ycsb::EncodeRecord)
///
/// Reply frames reuse the request's opcode and request_id; direction
/// disambiguates. Reply payload: u8 status code, message, then per-op:
///   kRead               record
///   kScan               varint32 n, then n x (key, record)
///   kDiskUsage          u64 bytes
/// See docs/serving.md for the full layout and design notes.

inline constexpr uint8_t kFrameMagic = 0xA7;
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
inline constexpr size_t kFrameTrailerBytes = 4;
/// Upper bound on a frame payload; a decoder rejects bigger lengths
/// before allocating, so a corrupt or hostile length prefix cannot OOM
/// the process.
inline constexpr uint32_t kMaxPayloadBytes = 32u << 20;

enum class Opcode : uint8_t {
  kPing = 1,
  kRead = 2,
  kScan = 3,
  kInsert = 4,
  kUpdate = 5,
  kDelete = 6,
  kDiskUsage = 7,
};

const char* OpcodeName(Opcode op);
bool IsValidOpcode(uint8_t raw);

/// One parsed frame; `payload` owns its bytes (they outlive the decoder's
/// input buffer).
struct Frame {
  Opcode op = Opcode::kPing;
  uint64_t request_id = 0;
  std::string payload;
};

/// Appends one complete frame (header + payload + CRC trailer) to `out`.
void AppendFrame(Opcode op, uint64_t request_id, const Slice& payload,
                 std::string* out);

/// Incremental frame parser for a byte stream: `Feed` arbitrary chunks
/// (a syscall's worth of bytes, possibly containing many frames or a
/// fraction of one), then drain complete frames with `Next`. Once a
/// structural error is detected (bad magic/version/flags, oversized
/// length, CRC mismatch) the decoder latches kError — a corrupt stream
/// cannot be resynchronized and the connection must be dropped.
class FrameDecoder {
 public:
  enum class Result { kNeedMore, kFrame, kError };

  void Feed(const char* data, size_t n);
  Result Next(Frame* frame);

  /// Human-readable description of the latched error (empty when none).
  const std::string& error() const { return error_; }
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  Result Fail(const std::string& message);

  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  std::string error_;
  bool failed_ = false;
};

/// A decoded request, the wire form of one ycsb::DB call.
struct Request {
  Opcode op = Opcode::kPing;
  std::string table;
  std::string key;
  int count = 0;        // kScan
  ycsb::Record record;  // kInsert / kUpdate
};

/// A decoded reply. `status` carries the remote operation's outcome
/// (NotFound, Corruption, ... survive the wire).
struct Response {
  Status status;
  ycsb::Record record;                     // kRead
  std::vector<ycsb::KeyedRecord> records;  // kScan
  uint64_t disk_bytes = 0;                 // kDiskUsage
};

/// Appends the request as a complete frame.
void EncodeRequest(const Request& request, uint64_t request_id,
                   std::string* out);
/// Parses a request frame's payload; false on malformed data.
bool DecodeRequest(const Frame& frame, Request* request);

/// Appends the reply as a complete frame (opcode = the request's).
void EncodeResponse(Opcode op, uint64_t request_id, const Response& response,
                    std::string* out);
/// Parses a reply frame's payload; false on malformed data.
bool DecodeResponse(const Frame& frame, Response* response);

}  // namespace apmbench::net

#endif  // APMBENCH_NET_PROTOCOL_H_
