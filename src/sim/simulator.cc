#include "sim/simulator.h"

#include <utility>

namespace apmbench::sim {

void Simulator::ScheduleAt(Time when, std::function<void()> fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the function is moved out via a
  // const_cast that is safe because pop() follows immediately.
  Event& top = const_cast<Event&>(queue_.top());
  Time when = top.when;
  std::function<void()> fn = std::move(top.fn);
  queue_.pop();
  now_ = when;
  events_processed_++;
  if (fn) fn();
  return true;
}

void Simulator::RunUntil(Time until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    Step();
  }
  if (now_ < until) now_ = until;
}

void Resource::Request(double service_seconds, std::function<void()> done) {
  if (busy_ < servers_) {
    StartService(service_seconds, std::move(done));
  } else {
    queue_.push_back(Pending{service_seconds, std::move(done)});
  }
}

void Resource::StartService(double service_seconds,
                            std::function<void()> done) {
  busy_++;
  busy_seconds_ += service_seconds;
  sim_->Schedule(service_seconds, [this, done = std::move(done)]() {
    busy_--;
    completed_++;
    if (!queue_.empty()) {
      Pending next = std::move(queue_.front());
      queue_.pop_front();
      StartService(next.service, std::move(next.done));
    }
    if (done) done();
  });
}

}  // namespace apmbench::sim
