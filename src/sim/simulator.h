#ifndef APMBENCH_SIM_SIMULATOR_H_
#define APMBENCH_SIM_SIMULATOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <string>
#include <vector>

namespace apmbench::sim {

/// Virtual time in seconds.
using Time = double;

/// A single-threaded discrete-event scheduler. Events fire in timestamp
/// order (FIFO among equal timestamps). This is the substrate on which
/// the paper's two clusters are modeled: real wall-clock benchmarking of
/// six distributed systems on 12+ machines is replaced by virtual-time
/// execution of closed-loop clients against queueing models of each
/// system (see simstores/).
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (>= 0).
  void Schedule(Time delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  void ScheduleAt(Time when, std::function<void()> fn);

  /// Runs events until the queue empties or virtual time passes `until`.
  void RunUntil(Time until);

  /// Executes the next event; false when the queue is empty.
  bool Step();

  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    Time when;
    uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
};

/// A FIFO queueing station with `servers` identical servers — the model
/// of a node's CPU cores (m = cores), its disk (m = 1), or a serial
/// executor site (m = 1). Requests are served in arrival order; the
/// `done` callback fires when service completes.
class Resource {
 public:
  Resource(Simulator* sim, std::string name, int servers)
      : sim_(sim), name_(std::move(name)), servers_(servers) {}

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Enqueues a request needing `service_seconds` of one server.
  void Request(double service_seconds, std::function<void()> done);

  /// Work executed without a completion callback (background load such as
  /// compaction debt).
  void RequestBackground(double service_seconds) {
    Request(service_seconds, nullptr);
  }

  const std::string& name() const { return name_; }
  int servers() const { return servers_; }
  size_t queue_length() const { return queue_.size(); }
  int busy_servers() const { return busy_; }
  uint64_t completed() const { return completed_; }
  /// Aggregate busy server-seconds, for utilization reporting.
  double busy_seconds() const { return busy_seconds_; }

 private:
  struct Pending {
    double service;
    std::function<void()> done;
  };

  void StartService(double service_seconds, std::function<void()> done);

  Simulator* sim_;
  std::string name_;
  int servers_;
  int busy_ = 0;
  std::deque<Pending> queue_;
  uint64_t completed_ = 0;
  double busy_seconds_ = 0;
};

}  // namespace apmbench::sim

#endif  // APMBENCH_SIM_SIMULATOR_H_
